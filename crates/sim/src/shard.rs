//! Sharded lockstep execution: cut a NoC at link boundaries and run the
//! pieces as independent [`Clocked`] regions with per-region idle skipping.
//!
//! # Why links are the right cut
//!
//! The Æthereal guarantees come from contention-free GT slot scheduling, so
//! router-to-router links are the **only** coupling between regions of a
//! mesh: a word emitted onto a link in cycle *t* is registered by the far
//! router in the same cycle's absorb phase, and the only state flowing the
//! other way is the link-level BE credit earned when the far input dequeues.
//! Cutting at links therefore decomposes the network exactly — each piece
//! keeps the full two-phase cycle contract, and the cross-shard wires become
//! *mailboxes* whose contents are exchanged between the global emit and
//! absorb phases. The exchange at the phase barrier preserves the race-free
//! discipline: every emit still reads only previous-cycle state, every
//! absorb registers exactly what a wired link would have carried.
//!
//! # The pieces
//!
//! * [`Partition`] — the router → shard assignment, with validation and the
//!   cut-edge computation over a [`Topology`];
//! * [`Noc::split`](crate::Noc::split) — moves routers, NI handles and
//!   per-link counters of a drained network into per-shard [`Noc`]s whose
//!   cut ports are boundary mailboxes (see [`NocShard`]);
//! * [`ShardRunner`] — the slack-batched driver. Each global cycle runs
//!   emit on every *awake* region, drains the **boundary-dirty list**
//!   (wires with no traffic this cycle cost zero exchange work), then runs
//!   absorb; every boundary word and credit is absorbed at its **exact due
//!   cycle**, so the cut link's one-cycle latency is never shortened or
//!   stretched. On top of that per-cycle exchange, the runner amortizes its
//!   *scheduling* work over [`ShardRunner::set_batch`]-sized epochs:
//!   activity-set decisions (quiescence walks, [`Clocked::next_event`]
//!   horizons) run once per epoch instead of once per cycle, and
//!   [`ShardRunner::run_parallel`] replaces the two per-cycle global
//!   barrier waits of the first generation with per-wire published-cycle
//!   watermarks over cycle-stamped [`Mailbox`] queues plus **one**
//!   spin-then-yield epoch barrier per batch. Regions that report
//!   themselves quiescent leave the activity set and sleep until their
//!   [`Clocked::next_event`] horizon — which now includes the next due
//!   cycle of a pending router GT calendar — or until a boundary
//!   word/credit arrives for them, at which point they are caught up with
//!   one exact [`Clocked::skip`].
//!
//! A sharded run is **bit-identical** to ticking the unsplit fabric — for
//! any batch size, in both execution modes: the batch amortizes barriers
//! and bookkeeping, never the data exchange. The per-shard statistics
//! merge back onto the global link numbering via [`merge_noc_stats`],
//! pinned by the parity tests here and in the facade crate.

use crate::engine::Clocked;
use crate::link::LinkId;
use crate::noc::Noc;
use crate::path::PortIdx;
use crate::stats::NocStats;
use crate::sync::{AtomicU64Cell, AtomicUsizeCell, MutexCell, Ordering, StdSync, SyncFamily};
use crate::topology::{NiId, RouterId, Topology};
use crate::word::LinkWord;

/// A router → shard assignment over a topology.
///
/// Shard ids must be dense (`0..shards()`, every shard non-empty). NIs
/// always follow their attachment router, so every cut is an inter-router
/// link — the property that makes the decomposition exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shard_of: Vec<usize>,
    shards: usize,
}

/// Why a shard assignment is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The assignment is empty.
    Empty,
    /// A shard id in `0..shards` owns no router.
    EmptyShard {
        /// The unowned shard id.
        shard: usize,
    },
    /// The assignment length does not match the topology's router count.
    WrongLength {
        /// Routers in the assignment.
        got: usize,
        /// Routers in the topology.
        want: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Empty => write!(f, "empty partition"),
            PartitionError::EmptyShard { shard } => write!(f, "shard {shard} owns no router"),
            PartitionError::WrongLength { got, want } => {
                write!(f, "partition covers {got} routers but topology has {want}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// One cut inter-router edge: the two half-links the partition separated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutEdge {
    /// Index of the edge in [`Topology::edges`].
    pub edge: usize,
    /// Shard owning side `a`.
    pub a_shard: usize,
    /// Router on side `a` (global id).
    pub a_router: RouterId,
    /// Port on side `a`.
    pub a_port: PortIdx,
    /// Shard owning side `b`.
    pub b_shard: usize,
    /// Router on side `b` (global id).
    pub b_router: RouterId,
    /// Port on side `b`.
    pub b_port: PortIdx,
}

/// One shard's slice of a topology, with local↔global id maps.
#[derive(Debug, Clone)]
pub struct ShardPiece {
    /// The shard's own topology (cut ports left unconnected).
    pub topology: Topology,
    /// Local router id → global router id (ascending).
    pub routers: Vec<RouterId>,
    /// Local NI id → global NI id (ascending).
    pub nis: Vec<NiId>,
    /// Local edge index → global edge index.
    pub edge_map: Vec<usize>,
}

impl Partition {
    /// Creates a partition from a router → shard map.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the map is empty or shard ids are not
    /// dense.
    pub fn new(shard_of: Vec<usize>) -> Result<Self, PartitionError> {
        if shard_of.is_empty() {
            return Err(PartitionError::Empty);
        }
        let shards = shard_of.iter().copied().max().unwrap_or(0) + 1;
        for s in 0..shards {
            if !shard_of.contains(&s) {
                return Err(PartitionError::EmptyShard { shard: s });
            }
        }
        Ok(Partition { shard_of, shards })
    }

    /// The trivial one-shard partition of `routers` routers.
    pub fn single(routers: usize) -> Self {
        Partition::new(vec![0; routers.max(1)]).expect("single shard is dense")
    }

    /// Cuts a `width × height` mesh into `shards` horizontal row bands —
    /// the canonical mesh cut, crossing only vertical (north/south) links.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds `height`.
    pub fn mesh_rows(width: usize, height: usize, shards: usize) -> Self {
        assert!(shards >= 1 && shards <= height, "need 1..=height row bands");
        let shard_of = (0..width * height)
            .map(|r| (r / width) * shards / height)
            .collect();
        Partition::new(shard_of).expect("row bands are dense")
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning router `r`.
    pub fn shard_of(&self, r: RouterId) -> usize {
        self.shard_of[r]
    }

    /// The shard owning NI `ni` of `topology` (its attachment router's
    /// shard).
    pub fn shard_of_ni(&self, topology: &Topology, ni: NiId) -> usize {
        let (r, _) = topology.ni_attachment(ni).expect("ni in range");
        self.shard_of[r]
    }

    /// Checks the partition against a topology: the map must cover every
    /// router, and every cut must be an inter-router link. The latter holds
    /// by construction — NIs attach to exactly one router and follow it —
    /// and is re-asserted while enumerating the cuts.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn validate(&self, topology: &Topology) -> Result<(), PartitionError> {
        if self.shard_of.len() != topology.router_count() {
            return Err(PartitionError::WrongLength {
                got: self.shard_of.len(),
                want: topology.router_count(),
            });
        }
        Ok(())
    }

    /// The inter-router edges this partition cuts, in global edge order.
    pub fn cut_edges(&self, topology: &Topology) -> Vec<CutEdge> {
        topology
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| self.shard_of[e.a] != self.shard_of[e.b])
            .map(|(k, e)| CutEdge {
                edge: k,
                a_shard: self.shard_of[e.a],
                a_router: e.a,
                a_port: e.port_a,
                b_shard: self.shard_of[e.b],
                b_router: e.b,
                b_port: e.port_b,
            })
            .collect()
    }

    /// Extracts each shard's topology slice with its id maps.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not validate against `topology`.
    pub fn pieces(&self, topology: &Topology) -> Vec<ShardPiece> {
        self.validate(topology).expect("partition fits topology");
        (0..self.shards)
            .map(|s| {
                let routers: Vec<RouterId> = (0..topology.router_count())
                    .filter(|&r| self.shard_of[r] == s)
                    .collect();
                let mut local_of = vec![usize::MAX; topology.router_count()];
                for (lr, &gr) in routers.iter().enumerate() {
                    local_of[gr] = lr;
                }
                let router_ports = routers.iter().map(|&r| topology.ports_of(r)).collect();
                let mut edge_map = Vec::new();
                let mut edges = Vec::new();
                for (k, e) in topology.edges().iter().enumerate() {
                    if self.shard_of[e.a] == s && self.shard_of[e.b] == s {
                        edge_map.push(k);
                        edges.push(crate::topology::RouterEdge {
                            a: local_of[e.a],
                            port_a: e.port_a,
                            b: local_of[e.b],
                            port_b: e.port_b,
                        });
                    }
                }
                let mut nis = Vec::new();
                let mut ni_attach = Vec::new();
                for ni in 0..topology.ni_count() {
                    let (r, p) = topology.ni_attachment(ni).expect("ni in range");
                    if self.shard_of[r] == s {
                        nis.push(ni);
                        ni_attach.push((local_of[r], p));
                    }
                }
                ShardPiece {
                    topology: Topology::custom(router_ports, edges, ni_attach),
                    routers,
                    nis,
                    edge_map,
                }
            })
            .collect()
    }
}

/// One shard produced by [`Noc::split`]: the shard network plus the maps
/// that tie its local numbering back to the global one.
#[derive(Debug, Clone)]
pub struct NocShard {
    /// The shard's network, cut ports opened as boundaries in
    /// [`Partition::cut_edges`] order.
    pub noc: Noc,
    /// Local router id → global router id.
    pub routers: Vec<RouterId>,
    /// Local NI id → global NI id.
    pub nis: Vec<NiId>,
    /// Local link id → global link id.
    pub link_map: Vec<LinkId>,
    /// Boundary id → global id of the directed link whose words this side
    /// ingests.
    pub boundary_links: Vec<LinkId>,
    /// Boundary id → index into [`Partition::cut_edges`].
    pub cuts: Vec<usize>,
}

impl Clocked for NocShard {
    fn now(&self) -> u64 {
        self.noc.now()
    }

    fn emit(&mut self) {
        self.noc.emit();
    }

    fn absorb(&mut self) {
        self.noc.absorb();
    }

    fn quiescent(&self) -> bool {
        self.noc.quiescent()
    }

    fn skip(&mut self, cycles: u64) {
        self.noc.skip(cycles);
    }

    fn next_event(&self, now: u64) -> u64 {
        self.noc.next_event(now)
    }
}

impl ShardRegion for NocShard {
    fn shard_noc(&self) -> &Noc {
        &self.noc
    }

    fn shard_noc_mut(&mut self) -> &mut Noc {
        &mut self.noc
    }
}

/// One directed cross-shard wire: the mailbox route from a source shard's
/// boundary to the destination shard's boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryWire {
    /// Producing shard.
    pub src_shard: usize,
    /// Boundary id within the producing shard.
    pub src_boundary: usize,
    /// Consuming shard.
    pub dst_shard: usize,
    /// Boundary id within the consuming shard.
    pub dst_boundary: usize,
}

/// Enumerates the directed cross-shard wires of a split, one per boundary
/// (each boundary is the source of exactly one directed cut link).
pub fn wires_of(shards: &[NocShard]) -> Vec<BoundaryWire> {
    let mut wires = Vec::new();
    for (s, shard) in shards.iter().enumerate() {
        for (b, &cut) in shard.cuts.iter().enumerate() {
            let (ds, db) = shards
                .iter()
                .enumerate()
                .find_map(|(s2, sh2)| {
                    if s2 == s {
                        return None;
                    }
                    sh2.cuts.iter().position(|&c| c == cut).map(|b2| (s2, b2))
                })
                .expect("every cut has two sides");
            wires.push(BoundaryWire {
                src_shard: s,
                src_boundary: b,
                dst_shard: ds,
                dst_boundary: db,
            });
        }
    }
    wires
}

/// Reconstructs the global [`NocStats`] from per-shard networks and their
/// link maps, bit-identical to the unsplit network's counters. `parts`
/// yields `(shard network, link_map, boundary_links)` triples.
///
/// # Panics
///
/// Panics if the shards are not at the same cycle.
pub fn merge_noc_stats<'a, I>(parts: I) -> NocStats
where
    I: IntoIterator<Item = (&'a Noc, &'a [LinkId], &'a [LinkId])> + Clone,
{
    let total_links = parts
        .clone()
        .into_iter()
        .flat_map(|(_, lm, bl)| lm.iter().chain(bl.iter()).copied())
        .max()
        .map_or(0, |m| m + 1);
    let mut merged = NocStats::new(total_links);
    let mut first = true;
    for (noc, link_map, boundary_links) in parts {
        let st = noc.stats();
        if first {
            merged.cycles = st.cycles;
            first = false;
        }
        assert_eq!(st.cycles, merged.cycles, "shards out of lockstep");
        merged.gt_conflicts += st.gt_conflicts;
        merged.be_overflows += st.be_overflows;
        merged.delivered[0] += st.delivered[0];
        merged.delivered[1] += st.delivered[1];
        for (l, &g) in link_map.iter().enumerate() {
            merged.links[g] = st.links[l];
        }
        for (b, &g) in boundary_links.iter().enumerate() {
            merged.links[g] = *noc.boundary_stats(b);
        }
    }
    merged
}

/// A [`Clocked`] region with boundary-mailbox access — the shape the shard
/// runner drives. Implemented by [`Noc`] itself (pure-network shards) and
/// by `aethereal-cfg`'s `NocSystem` (full-system shards).
pub trait ShardRegion: Clocked + Send {
    /// The region's network (owner of the boundary mailboxes).
    fn shard_noc(&self) -> &Noc;

    /// Mutable access to the region's network.
    fn shard_noc_mut(&mut self) -> &mut Noc;

    /// Offers the region up to `max` cycles of analytical fast-forward
    /// (see [`crate::ff`]). Called by [`ShardRunner::run`] only while this
    /// region is the *sole* awake region and every sleeper's wake horizon
    /// lies beyond the offered window, so nothing can interact with it.
    /// The implementor owns all eligibility checking — in particular it
    /// must decline unless its boundaries are silent and every live
    /// circuit stays inside the region, because the probe ticks the
    /// region alone, outside the runner's boundary exchange.
    ///
    /// The default declines: plain network shards fall back to the
    /// quiescent-skip path, which already covers their drained states.
    fn fast_forward_region(&mut self, max: u64) -> crate::ff::FfOutcome {
        let _ = max;
        crate::ff::FfOutcome::DECLINED
    }
}

impl ShardRegion for Noc {
    fn shard_noc(&self) -> &Noc {
        self
    }

    fn shard_noc_mut(&mut self) -> &mut Noc {
        self
    }
}

/// One cycle-stamped entry of a boundary [`Mailbox`]: the traffic a cut
/// wire carries in one specific cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampedBoundary {
    /// The cycle whose absorb phase must register this entry.
    pub due: u64,
    /// The word on the wire, if any.
    pub word: Option<LinkWord>,
    /// Link-level BE credits earned for the wire's producer.
    pub credits: u32,
}

/// A cycle-stamped boundary mailbox: the transport of one directed
/// cross-shard wire when producer and consumer are temporally decoupled
/// (the worker-thread runner, where a region may run up to a whole batch
/// ahead of a peer).
///
/// Entries are pushed in stamp order by the producing region's emit phase
/// and taken by the consuming region's absorb phase at **exactly** their
/// due cycle: [`Mailbox::take_due`] never returns an entry early, and
/// panics if an entry was missed — together the two directions of the
/// never-absorb-off-schedule property that makes batched execution
/// bit-identical to lockstep.
#[derive(Debug, Clone, Default)]
pub struct Mailbox {
    queue: std::collections::VecDeque<StampedBoundary>,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Queues the traffic a wire carries in cycle `due`. Stamps must be
    /// pushed in strictly increasing order (a wire carries at most one word
    /// and one credit bundle per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `due` does not exceed the newest queued stamp.
    pub fn push(&mut self, due: u64, word: Option<LinkWord>, credits: u32) {
        assert!(
            self.queue.back().is_none_or(|e| e.due < due),
            "mailbox stamps must increase (one entry per wire per cycle)"
        );
        self.queue.push_back(StampedBoundary { due, word, credits });
    }

    /// The stamp of the oldest queued entry.
    pub fn next_due(&self) -> Option<u64> {
        self.queue.front().map(|e| e.due)
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no entry is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Takes the entry due in exactly `cycle`, if any. An entry with a
    /// later stamp is left queued — a word is **never** absorbed before its
    /// due cycle, no matter how far ahead the producer ran.
    ///
    /// # Panics
    ///
    /// Panics if an entry with an *earlier* stamp is still queued: the
    /// consumer skipped a cycle in which the wire carried traffic.
    pub fn take_due(&mut self, cycle: u64) -> Option<(Option<LinkWord>, u32)> {
        let front = self.queue.front()?;
        assert!(
            front.due >= cycle,
            "mailbox entry due {} was missed (absorb at {})",
            front.due,
            cycle
        );
        if front.due > cycle {
            return None;
        }
        let e = self.queue.pop_front().expect("front checked");
        Some((e.word, e.credits))
    }
}

/// A reusable spin-then-yield barrier: the epoch synchronization point of
/// [`ShardRunner::run_parallel`]. Arrivals spin briefly on the generation
/// counter before yielding, so the short-epoch case never pays a futex
/// round trip.
///
/// Generic over the [`SyncFamily`] shim so the `testkit::mc` model checker
/// can explore this exact code on instrumented cells; production uses the
/// zero-cost [`StdSync`] default.
pub struct SpinBarrier<S: SyncFamily = StdSync> {
    n: usize,
    arrived: S::AtomicUsize,
    generation: S::AtomicU64,
}

impl<S: SyncFamily> std::fmt::Debug for SpinBarrier<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpinBarrier").field("n", &self.n).finish()
    }
}

impl<S: SyncFamily> SpinBarrier<S> {
    /// Creates a barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            arrived: S::AtomicUsize::new(0),
            generation: S::AtomicU64::new(0),
        }
    }

    /// Blocks until all `n` participants have arrived. The last arrival
    /// resets the count *before* releasing the generation bump, so the
    /// barrier is immediately reusable.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            S::spin_until(|| self.generation.load(Ordering::Acquire) != gen);
        }
    }
}

/// One directed wire's shared state in the worker-thread runner: the
/// stamped mailbox plus the producer's published-cycle watermark. The
/// watermark (`published` = first cycle *not* yet final) is what lets the
/// consumer absorb cycle `t` without a global barrier: once the producer
/// publishes past `t`, no further entry stamped ≤ `t` can appear.
///
/// Generic over the [`SyncFamily`] shim — see [`SpinBarrier`].
pub struct WireChannel<S: SyncFamily = StdSync> {
    /// First cycle whose boundary traffic is not yet final.
    published: S::AtomicU64,
    mailbox: S::Mutex<Mailbox>,
}

impl<S: SyncFamily> std::fmt::Debug for WireChannel<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireChannel")
            .field("published", &self.published.load(Ordering::Relaxed))
            .finish()
    }
}

impl<S: SyncFamily> WireChannel<S> {
    /// Creates a wire channel whose first unpublished cycle is `start`.
    pub fn new(start: u64) -> Self {
        WireChannel {
            published: S::AtomicU64::new(start),
            mailbox: S::Mutex::new(Mailbox::new()),
        }
    }

    /// Producer: queue cycle `due`'s traffic (called before publishing it).
    pub fn send(&self, due: u64, word: Option<LinkWord>, credits: u32) {
        self.mailbox.with(|m| m.push(due, word, credits));
    }

    /// Producer: mark cycle `t` final — every entry stamped ≤ `t` is queued.
    pub fn publish(&self, t: u64) {
        self.published.store(t + 1, Ordering::Release);
    }

    /// Consumer: spin-then-yield until cycle `t` is final.
    pub fn wait_published(&self, t: u64) {
        S::spin_until(|| self.published.load(Ordering::Acquire) > t);
    }

    /// Consumer: whether an entry is due at or before `t` (call only after
    /// [`WireChannel::wait_published`]).
    pub fn has_due(&self, t: u64) -> bool {
        self.mailbox.with(|m| m.next_due()).is_some_and(|d| d <= t)
    }

    /// Consumer: take cycle `t`'s entry, if the wire carried traffic then.
    pub fn take_due(&self, t: u64) -> Option<(Option<LinkWord>, u32)> {
        self.mailbox.with(|m| m.take_due(t))
    }
}

/// One worker's view of the shared exchange state in
/// [`ShardRunner::run_parallel`]: the epoch barrier, every wire's channel,
/// and this region's inbound/outbound wire lists.
///
/// Public (with [`run_worker`]) so the model checker drives the *same*
/// protocol code the production runner executes, not a re-implementation.
pub struct ExchangeSlice<'a, S: SyncFamily = StdSync> {
    /// The epoch barrier shared by all workers.
    pub barrier: &'a SpinBarrier<S>,
    /// Per-wire channels, indexed like `wires`.
    pub channels: &'a [WireChannel<S>],
    /// The cross-shard wire table (for destination boundary lookups).
    pub wires: &'a [BoundaryWire],
    /// Wire indices this region produces onto.
    pub out_list: &'a [usize],
    /// Wire indices this region consumes from.
    pub in_list: &'a [usize],
    /// `my_wire[boundary]` = outbound wire index of that boundary.
    pub my_wire: &'a [usize],
}

/// One worker thread's body in [`ShardRunner::run_parallel`]: runs `region`
/// from cycle `start` to `end` in `batch`-cycle epochs, exchanging boundary
/// traffic through the stamped mailboxes and published-cycle watermarks of
/// `slice` and re-aligning with its peers at the epoch barrier. Returns the
/// region's final `(awake, wake_at)` scheduler state.
///
/// The caller must invoke this once per region, concurrently, with every
/// worker sharing the same barrier and channel slice.
pub fn run_worker<R: ShardRegion, S: SyncFamily>(
    region: &mut R,
    slice: &ExchangeSlice<'_, S>,
    start: u64,
    end: u64,
    batch: u64,
    mut awake: bool,
    mut wake_at: u64,
) -> (bool, u64) {
    let (channels, wires) = (slice.channels, slice.wires);
    let mut t = start;
    while t < end {
        let t1 = end.min(t + batch);
        while t < t1 {
            if !awake && wake_at <= t {
                let now = region.now();
                region.skip(t - now);
                awake = true;
            }
            if awake {
                region.emit();
                while let Some((b, word, credits)) = region.shard_noc_mut().take_dirty_boundary() {
                    channels[slice.my_wire[b]].send(t, word, credits);
                }
            }
            // Publish cycle t on every outbound wire — also while asleep:
            // the watermark is the null message that lets consumers proceed.
            for &i in slice.out_list {
                channels[i].publish(t);
            }
            // Wait until every inbound wire is final for t.
            for &i in slice.in_list {
                channels[i].wait_published(t);
            }
            if !awake && slice.in_list.iter().any(|&i| channels[i].has_due(t)) {
                let now = region.now();
                region.skip(t - now);
                region.emit(); // no-op: region is quiescent
                awake = true;
            }
            if awake {
                for &i in slice.in_list {
                    if let Some((word, credits)) = channels[i].take_due(t) {
                        region.shard_noc_mut().put_boundary_in(
                            wires[i].dst_boundary,
                            word,
                            credits,
                        );
                    }
                }
                region.absorb();
            }
            t += 1;
        }
        // Epoch boundary: sleep decision, then re-align.
        if awake && region.quiescent() {
            let now = region.now();
            let horizon = region.next_event(now);
            if horizon > now {
                awake = false;
                wake_at = horizon;
            }
        }
        slice.barrier.wait();
    }
    let now = region.now();
    if now < end {
        region.skip(end - now);
    }
    (awake, wake_at)
}

/// The slack-batched shard driver with per-region activity tracking.
///
/// Every global cycle has the two engine phases, with the boundary
/// exchange between them:
///
/// 1. **emit** on every awake region (a sleeping region is quiescent by
///    definition, and a quiescent emit is a no-op — so skipping it is
///    exact);
/// 2. **exchange**: each region's boundary-dirty list is drained — only
///    wires that actually carried a word or credits this cycle cost any
///    work — and delivered to the destination shard for this cycle's
///    absorb; a sleeping destination is woken first (caught up with one
///    exact [`Clocked::skip`], its no-op emit run late);
/// 3. **absorb** on every awake region.
///
/// Activity-set maintenance is amortized over
/// [`batch`](ShardRunner::set_batch)-sized epochs: only at an epoch
/// boundary does the runner walk the awake regions' quiescence and
/// [`Clocked::next_event`] horizons and let drained regions leave the set.
/// Inside an epoch a quiescent region just keeps ticking (a no-op by the
/// quiescence contract), so the batch size trades scheduling overhead
/// against how promptly regions fall asleep — it never affects what the
/// simulation computes.
///
/// A region is never skipped past its own next-event horizon, and never
/// past a cycle in which input arrives for it — the two properties that
/// make per-region skipping exact. Input the runner cannot see (words
/// injected directly into a region's NI links between `run` calls) must be
/// announced with [`ShardRunner::wake`] first.
#[derive(Debug)]
pub struct ShardRunner {
    wires: Vec<BoundaryWire>,
    /// `dest[shard][boundary]` = the consuming `(shard, boundary)` of the
    /// wire fed by that outbound boundary.
    dest: Vec<Vec<(usize, usize)>>,
    batch: u64,
    cycle: u64,
    awake: Vec<bool>,
    wake_at: Vec<u64>,
    /// Next cycle at which a declined region fast-forward may be retried
    /// (declines scan the region's state; see [`crate::ff::FF_COOLDOWN`]).
    ff_cooldown_until: u64,
}

impl ShardRunner {
    /// Creates a runner for `regions` regions starting at `start_cycle`
    /// (the cycle the regions were split at), with the given cross-shard
    /// wires and a batch size of 1 (scheduling decisions every cycle — see
    /// [`ShardRunner::set_batch`]).
    pub fn new(regions: usize, wires: Vec<BoundaryWire>, start_cycle: u64) -> Self {
        let mut dest: Vec<Vec<(usize, usize)>> = vec![Vec::new(); regions];
        for w in &wires {
            assert!(
                w.src_shard < regions && w.dst_shard < regions,
                "wire out of range"
            );
            assert_ne!(w.src_shard, w.dst_shard, "wire must cross shards");
            if dest[w.src_shard].len() <= w.src_boundary {
                dest[w.src_shard].resize(w.src_boundary + 1, (usize::MAX, usize::MAX));
            }
            dest[w.src_shard][w.src_boundary] = (w.dst_shard, w.dst_boundary);
        }
        ShardRunner {
            wires,
            dest,
            batch: 1,
            cycle: start_cycle,
            awake: vec![true; regions],
            wake_at: vec![0; regions],
            ff_cooldown_until: 0,
        }
    }

    /// Sets the batch size `B ≥ 1` and returns `self` (builder form).
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.set_batch(batch);
        self
    }

    /// Sets the batch size: how many cycles run between scheduling epochs.
    /// A pure performance knob — execution is bit-identical for every
    /// `B ≥ 1` (see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn set_batch(&mut self, batch: u64) {
        assert!(batch >= 1, "batch size must be ≥ 1");
        self.batch = batch;
    }

    /// The configured batch size.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The global cycle (regions lag only while asleep; `run` returns with
    /// every region caught up to this).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Regions currently in the activity set.
    pub fn awake_count(&self) -> usize {
        self.awake.iter().filter(|&&a| a).count()
    }

    /// Ensures region `r` is awake and caught up to the runner's cycle.
    ///
    /// Required before injecting words **directly** into the region's NI
    /// links between `run` calls: such input bypasses the activity
    /// scheduler, which otherwise only wakes regions for boundary traffic
    /// and their own reported horizons. Redundant (and free) for awake
    /// regions.
    pub fn wake<R: ShardRegion>(&mut self, regions: &mut [R], r: usize) {
        if self.awake[r] {
            return;
        }
        let now = regions[r].now();
        if now < self.cycle {
            regions[r].skip(self.cycle - now);
        }
        self.awake[r] = true;
    }

    /// Wakes region `r` mid-cycle `t` for inbound boundary traffic: catch
    /// up with one exact skip, run the (no-op) emit so the region's phase
    /// order holds, and put it back in the activity set.
    fn wake_for_input<R: ShardRegion>(awake: &mut [bool], region: &mut R, r: usize, t: u64) {
        let now = region.now();
        region.skip(t - now);
        region.emit();
        awake[r] = true;
    }

    /// Runs `cycles` global cycles on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `regions` does not match the runner's region count.
    pub fn run<R: ShardRegion>(&mut self, regions: &mut [R], cycles: u64) {
        assert_eq!(regions.len(), self.awake.len(), "region count mismatch");
        let end = self.cycle + cycles;
        while self.cycle < end {
            let t0 = self.cycle;
            // Wake regions whose spontaneous-event horizon arrived.
            for (r, region) in regions.iter_mut().enumerate() {
                if !self.awake[r] && self.wake_at[r] <= t0 {
                    let now = region.now();
                    region.skip(t0 - now);
                    self.awake[r] = true;
                }
            }
            // Everyone asleep: jump straight to the earliest horizon.
            if self.awake.iter().all(|&a| !a) {
                let next = self.wake_at.iter().copied().min().unwrap_or(end);
                self.cycle = next.clamp(t0 + 1, end);
                continue;
            }
            // Sole-awake fast-forward: with exactly one region in the
            // activity set, nothing can reach it before the earliest
            // sleeper horizon (sleepers are quiescent — their first
            // possible action is their own wake) — so the whole gap is
            // offered to the region's analytical fast-forward backend.
            // A decline is rate-limited; a partial advance (probe ticks
            // without a certified jump) still moves global time.
            if self.awake.iter().filter(|&&a| a).count() == 1 && t0 >= self.ff_cooldown_until {
                let r = self.awake.iter().position(|&a| a).expect("one awake");
                let gap_end = self
                    .wake_at
                    .iter()
                    .enumerate()
                    .filter(|&(s, _)| !self.awake[s])
                    .map(|(_, &w)| w)
                    .min()
                    .unwrap_or(end)
                    .min(end);
                if gap_end > t0 {
                    let out = regions[r].fast_forward_region(gap_end - t0);
                    if out.jumped == 0 {
                        self.ff_cooldown_until = t0 + out.advanced.max(1) * 4;
                        self.ff_cooldown_until =
                            self.ff_cooldown_until.max(t0 + crate::ff::FF_COOLDOWN);
                    }
                    if out.advanced > 0 {
                        self.cycle = t0 + out.advanced;
                        continue;
                    }
                }
            }
            // One epoch: up to `batch` cycles of emit → exchange → absorb,
            // with scheduling work deferred to the epoch boundary.
            let t1 = end.min(t0 + self.batch);
            for t in t0..t1 {
                if t > t0 {
                    for (r, region) in regions.iter_mut().enumerate() {
                        if !self.awake[r] && self.wake_at[r] <= t {
                            let now = region.now();
                            region.skip(t - now);
                            self.awake[r] = true;
                        }
                    }
                }
                // Phase 1: emit.
                for (r, region) in regions.iter_mut().enumerate() {
                    if self.awake[r] {
                        region.emit();
                    }
                }
                // Exchange: drain each region's dirty boundaries; inbound
                // traffic wakes sleeping destinations. Quiet wires are
                // never visited.
                for s in 0..regions.len() {
                    while let Some((b, word, credits)) =
                        regions[s].shard_noc_mut().take_dirty_boundary()
                    {
                        debug_assert!(word.is_some() || credits > 0);
                        let (ds, db) = self.dest[s][b];
                        if !self.awake[ds] {
                            Self::wake_for_input(&mut self.awake, &mut regions[ds], ds, t);
                        }
                        regions[ds]
                            .shard_noc_mut()
                            .put_boundary_in(db, word, credits);
                    }
                }
                // Phase 2: absorb.
                for (r, region) in regions.iter_mut().enumerate() {
                    if self.awake[r] {
                        region.absorb();
                    }
                }
            }
            self.cycle = t1;
            // Epoch boundary: let drained regions leave the activity set.
            for (r, region) in regions.iter_mut().enumerate() {
                if self.awake[r] && region.quiescent() {
                    let now = region.now();
                    let horizon = region.next_event(now);
                    if horizon > now {
                        self.awake[r] = false;
                        self.wake_at[r] = horizon;
                    }
                }
            }
        }
        // Catch every sleeper up to the end of the span (never past its
        // horizon: a sleeper's horizon is ≥ end, else it would have woken).
        for region in regions.iter_mut() {
            let now = region.now();
            if now < end {
                region.skip(end - now);
            }
        }
    }

    /// Runs `cycles` global cycles with one worker thread per region.
    /// Bit-identical to [`Self::run`].
    ///
    /// Cross-shard traffic flows through cycle-stamped [`Mailbox`] queues,
    /// one per wire, each paired with the producer's published-cycle
    /// watermark: a worker absorbs cycle `t` as soon as every inbound
    /// wire's producer has published past `t` — a per-wire acquire load,
    /// spin-then-yield only when the consumer actually outruns a producer —
    /// instead of the two global barrier waits per cycle of the first
    /// generation. One spin-then-yield epoch barrier per
    /// [`batch`](ShardRunner::set_batch) re-aligns the workers, bounding
    /// how far any region (and any mailbox) can run ahead.
    ///
    /// The worker protocol never offers
    /// [`fast_forward_region`](ShardRegion::fast_forward_region): its
    /// sole-awake precondition is a global property the decoupled workers
    /// cannot observe cheaply. A workload periodic enough to fast-forward
    /// is single-region-active by definition — run it through
    /// [`ShardRunner::run`], where the offer is made.
    ///
    /// # Panics
    ///
    /// Panics if `regions` does not match the runner's region count.
    pub fn run_parallel<R: ShardRegion>(&mut self, regions: &mut [R], cycles: u64) {
        assert_eq!(regions.len(), self.awake.len(), "region count mismatch");
        let n = regions.len();
        if n <= 1 || cycles == 0 {
            return self.run(regions, cycles);
        }
        let start = self.cycle;
        let end = start + cycles;
        let channels: Vec<WireChannel> =
            self.wires.iter().map(|_| WireChannel::new(start)).collect();
        let barrier = SpinBarrier::new(n);
        let mut out_w: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut in_w: Vec<Vec<usize>> = vec![Vec::new(); n];
        // `wire_of[region][boundary]` = outbound wire index of that boundary.
        let mut wire_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, w) in self.wires.iter().enumerate() {
            out_w[w.src_shard].push(i);
            in_w[w.dst_shard].push(i);
            if wire_of[w.src_shard].len() <= w.src_boundary {
                wire_of[w.src_shard].resize(w.src_boundary + 1, usize::MAX);
            }
            wire_of[w.src_shard][w.src_boundary] = i;
        }
        let batch = self.batch;
        let states: Vec<(bool, u64)> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n);
                for (r, region) in regions.iter_mut().enumerate() {
                    let slice = ExchangeSlice {
                        barrier: &barrier,
                        channels: &channels,
                        wires: &self.wires,
                        out_list: &out_w[r],
                        in_list: &in_w[r],
                        my_wire: &wire_of[r],
                    };
                    let awake = self.awake[r];
                    let wake_at = self.wake_at[r];
                    handles.push(scope.spawn(move || {
                        run_worker(region, &slice, start, end, batch, awake, wake_at)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
        for (r, (awake, wake_at)) in states.into_iter().enumerate() {
            self.awake[r] = awake;
            self.wake_at[r] = wake_at;
        }
        self.cycle = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::header::PacketHeader;
    use crate::path::Path;
    use crate::rng::Rng64;
    use crate::word::{LinkWord, WordClass, SLOT_WORDS};

    // ---- Partition ----------------------------------------------------

    #[test]
    fn partition_requires_dense_shards() {
        assert!(Partition::new(vec![0, 2]).is_err());
        assert!(Partition::new(Vec::new()).is_err());
        let p = Partition::new(vec![1, 0, 1]).unwrap();
        assert_eq!(p.shards(), 2);
    }

    #[test]
    fn mesh_rows_cut_only_vertical_links() {
        let topo = Topology::mesh(4, 4, 1);
        let p = Partition::mesh_rows(4, 4, 2);
        assert_eq!(p.shards(), 2);
        for c in p.cut_edges(&topo) {
            let e = topo.edges()[c.edge];
            // A vertical mesh edge connects routers one row apart.
            assert_eq!(e.b - e.a, 4, "cut must be a north/south link");
        }
        assert_eq!(p.cut_edges(&topo).len(), 4, "one cut per column");
    }

    #[test]
    fn partition_validates_length() {
        let topo = Topology::mesh(2, 2, 1);
        let p = Partition::new(vec![0, 1]).unwrap();
        assert!(matches!(
            p.validate(&topo),
            Err(PartitionError::WrongLength { got: 2, want: 4 })
        ));
    }

    #[test]
    fn pieces_preserve_ports_and_order() {
        let topo = Topology::mesh(2, 2, 2);
        let p = Partition::mesh_rows(2, 2, 2);
        let pieces = p.pieces(&topo);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].routers, vec![0, 1]);
        assert_eq!(pieces[1].routers, vec![2, 3]);
        assert_eq!(pieces[0].nis, vec![0, 1, 2, 3]);
        assert_eq!(pieces[1].nis, vec![4, 5, 6, 7]);
        // Port counts survive the cut (headers address ports by index).
        for piece in &pieces {
            for (lr, &gr) in piece.routers.iter().enumerate() {
                assert_eq!(piece.topology.ports_of(lr), topo.ports_of(gr));
            }
        }
    }

    // ---- Noc-level split parity --------------------------------------

    fn be_packet(path: Path, qid: u8, payload: &[u32]) -> Vec<LinkWord> {
        let h = PacketHeader {
            path,
            qid,
            credits: 0,
            flush: false,
        };
        let mut words = vec![LinkWord::header(h.pack(), WordClass::BestEffort)];
        for (i, &w) in payload.iter().enumerate() {
            words.push(LinkWord::payload(
                w,
                WordClass::BestEffort,
                i + 1 == payload.len(),
            ));
        }
        words
    }

    fn gt_packet(path: Path, qid: u8, payload: &[u32]) -> Vec<LinkWord> {
        let h = PacketHeader {
            path,
            qid,
            credits: 0,
            flush: false,
        };
        let mut words = vec![LinkWord::header(h.pack(), WordClass::Guaranteed)];
        for (i, &w) in payload.iter().enumerate() {
            words.push(LinkWord::payload(
                w,
                WordClass::Guaranteed,
                i + 1 == payload.len(),
            ));
        }
        words
    }

    /// A split 2x2 mesh: shard 0 owns the top row, shard 1 the bottom.
    fn split_2x2() -> (Topology, Noc, Vec<NocShard>, ShardRunner) {
        let topo = Topology::mesh(2, 2, 1);
        let single = Noc::new(&topo);
        let partition = Partition::mesh_rows(2, 2, 2);
        let shards = single.clone().split(&topo, &partition);
        let wires = wires_of(&shards);
        let runner = ShardRunner::new(shards.len(), wires, 0);
        (topo, single, shards, runner)
    }

    fn merged(shards: &[NocShard]) -> NocStats {
        merge_noc_stats(
            shards
                .iter()
                .map(|s| (&s.noc, &s.link_map[..], &s.boundary_links[..])),
        )
    }

    /// Global NI id → (shard, local NI id).
    fn locate(shards: &[NocShard], ni: NiId) -> (usize, usize) {
        for (s, sh) in shards.iter().enumerate() {
            if let Some(l) = sh.nis.iter().position(|&g| g == ni) {
                return (s, l);
            }
        }
        panic!("NI {ni} not found");
    }

    #[test]
    fn split_covers_every_link_exactly_once() {
        let (topo, single, shards, _) = split_2x2();
        let total = single.links().len();
        let mut seen = vec![0usize; total];
        for sh in &shards {
            for &g in sh.link_map.iter().chain(&sh.boundary_links) {
                seen[g] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        assert_eq!(topo.edges().len() * 2 + topo.ni_count() * 2, total);
    }

    /// Drives the same word schedule into the unsplit network and the
    /// sharded pair, comparing deliveries and merged statistics each cycle.
    fn assert_parity(schedule: &[(u64, NiId, LinkWord)], horizon: u64, drain: NiId) {
        let (_, mut single, mut shards, mut runner) = split_2x2();
        let (ds, dl) = locate(&shards, drain);
        let mut got_single = Vec::new();
        let mut got_sharded = Vec::new();
        for t in 0..horizon {
            for &(at, ni, w) in schedule {
                if at == t {
                    single.ni_link_mut(ni).send(w);
                    let (s, l) = locate(&shards, ni);
                    // Direct NI-link injection bypasses the activity
                    // scheduler: announce it.
                    runner.wake(&mut shards, s);
                    shards[s].noc.ni_link_mut(l).send(w);
                }
            }
            single.tick();
            runner.run(&mut shards, 1);
            while let Some(w) = single.ni_link_mut(drain).recv() {
                got_single.push((t, w));
            }
            while let Some(w) = shards[ds].noc.ni_link_mut(dl).recv() {
                got_sharded.push((t, w));
            }
        }
        assert_eq!(got_single, got_sharded, "delivery trace differs");
        assert_eq!(*single.stats(), merged(&shards), "statistics differ");
    }

    #[test]
    fn be_worm_across_the_cut_is_bit_identical() {
        let topo = Topology::mesh(2, 2, 1);
        let path = topo.route(0, 3).unwrap(); // E, S, eject: crosses the cut
        let words = be_packet(path, 5, &[10, 20, 30, 40]);
        let schedule: Vec<_> = words
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u64, 0, w))
            .collect();
        assert_parity(&schedule, 40, 3);
    }

    #[test]
    fn gt_slot_alignment_survives_the_cut() {
        let topo = Topology::mesh(2, 2, 1);
        let path = topo.route(0, 3).unwrap();
        let words = gt_packet(path, 1, &[100, 200]);
        let schedule: Vec<_> = words
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u64, 0, w))
            .collect();
        assert_parity(&schedule, 11 + SLOT_WORDS * 3, 3);
    }

    #[test]
    fn contending_worms_and_boundary_credits_are_bit_identical() {
        // Two senders saturate NI 3 from both sides of the cut: router
        // arbitration, wormhole blocking and the boundary credit return all
        // engage.
        let topo = Topology::mesh(2, 2, 1);
        let p03 = topo.route(0, 3).unwrap();
        let p23 = topo.route(2, 3).unwrap();
        let mut schedule = Vec::new();
        for round in 0..6u64 {
            for (i, &w) in be_packet(p03.clone(), 0, &[1, 2, 3, 4, 5])
                .iter()
                .enumerate()
            {
                schedule.push((round * 6 + i as u64, 0, w));
            }
            for (i, &w) in be_packet(p23.clone(), 1, &[6, 7, 8]).iter().enumerate() {
                schedule.push((round * 6 + i as u64, 2, w));
            }
        }
        assert_parity(&schedule, 140, 3);
    }

    #[test]
    fn randomized_traffic_parity() {
        // Seeded random single-word packets from every NI to every other,
        // random cycles: the strongest Noc-level bit-identity check.
        let topo = Topology::mesh(2, 2, 1);
        let mut rng = Rng64::seed_from_u64(0xA37E);
        let mut schedule = Vec::new();
        let mut busy_until = [0u64; 4];
        for _ in 0..60 {
            let src = rng.below(4) as usize;
            let dst = ((src as u64 + 1 + rng.below(3)) % 4) as usize;
            let at = busy_until[src] + rng.below(4);
            let path = topo.route(src, dst).unwrap();
            let words = be_packet(path, dst as u8, &[rng.below(1 << 20) as u32]);
            for (i, &w) in words.iter().enumerate() {
                schedule.push((at + i as u64, src, w));
            }
            busy_until[src] = at + words.len() as u64;
        }
        // Only NI 3 is drained; the others keep their inboxes — still part
        // of the compared state via delivered counts and link tallies.
        assert_parity(&schedule, 400, 3);
    }

    #[test]
    fn parallel_runner_matches_sequential() {
        let topo = Topology::mesh(2, 2, 1);
        let single = Noc::new(&topo);
        let partition = Partition::mesh_rows(2, 2, 2);
        let mut seq = single.clone().split(&topo, &partition);
        let mut par = single.split(&topo, &partition);
        let path = topo.route(0, 3).unwrap();
        let words = be_packet(path, 2, &[7, 8, 9]);
        for (shards, parallel) in [(&mut seq, false), (&mut par, true)] {
            let wires = wires_of(shards);
            let mut runner = ShardRunner::new(shards.len(), wires, 0);
            for &w in &words {
                let (s, l) = locate(shards, 0);
                runner.wake(shards, s);
                shards[s].noc.ni_link_mut(l).send(w);
                if parallel {
                    runner.run_parallel(shards, 1);
                } else {
                    runner.run(shards, 1);
                }
            }
            if parallel {
                runner.run_parallel(shards, 60);
            } else {
                runner.run(shards, 60);
            }
        }
        assert_eq!(merged(&seq), merged(&par));
        let (s, l) = locate(&seq, 3);
        let mut a = Vec::new();
        while let Some(w) = seq[s].noc.ni_link_mut(l).recv() {
            a.push(w);
        }
        let mut b = Vec::new();
        while let Some(w) = par[s].noc.ni_link_mut(l).recv() {
            b.push(w);
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    // ---- Cycle-stamped mailboxes -------------------------------------

    #[test]
    fn mailbox_delivers_at_exact_due_cycles() {
        let mut mb = Mailbox::new();
        let w = LinkWord::header_only(7, WordClass::BestEffort);
        mb.push(3, Some(w), 0);
        mb.push(5, None, 2);
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.next_due(), Some(3));
        // Early cycles: nothing, and the entry stays queued.
        assert_eq!(mb.take_due(1), None);
        assert_eq!(mb.take_due(2), None);
        assert_eq!(mb.take_due(3), Some((Some(w), 0)));
        assert_eq!(mb.take_due(4), None, "stamp 5 must not surface at 4");
        assert_eq!(mb.take_due(5), Some((None, 2)));
        assert!(mb.is_empty());
        assert_eq!(mb.take_due(6), None);
    }

    #[test]
    #[should_panic(expected = "missed")]
    fn mailbox_panics_on_missed_due_cycle() {
        let mut mb = Mailbox::new();
        mb.push(3, None, 1);
        let _ = mb.take_due(4); // cycle 3 was skipped
    }

    #[test]
    #[should_panic(expected = "stamps must increase")]
    fn mailbox_rejects_out_of_order_stamps() {
        let mut mb = Mailbox::new();
        mb.push(5, None, 1);
        mb.push(5, None, 1);
    }

    #[test]
    fn mailbox_never_absorbs_before_due_randomized() {
        // Property: a consumer sweeping every cycle receives each entry at
        // exactly its stamp, regardless of how far ahead the producer ran.
        let mut rng = Rng64::seed_from_u64(0xD0E);
        for _ in 0..50 {
            let mut mb = Mailbox::new();
            let mut due = 0u64;
            let mut expected = Vec::new();
            for _ in 0..rng.below(20) {
                due += 1 + rng.below(5);
                let credits = rng.below(4) as u32;
                mb.push(due, None, credits);
                expected.push((due, credits));
            }
            let mut got = Vec::new();
            for t in 0..=due {
                if let Some((word, credits)) = mb.take_due(t) {
                    assert!(word.is_none());
                    got.push((t, credits));
                }
            }
            assert_eq!(got, expected, "each entry surfaced at its stamp");
            assert!(mb.is_empty());
        }
    }

    // ---- Batched execution parity ------------------------------------

    /// The randomized BE schedule of `randomized_traffic_parity`.
    fn random_schedule(seed: u64) -> Vec<(u64, NiId, LinkWord)> {
        let topo = Topology::mesh(2, 2, 1);
        let mut rng = Rng64::seed_from_u64(seed);
        let mut schedule = Vec::new();
        let mut busy_until = [0u64; 4];
        for _ in 0..60 {
            let src = rng.below(4) as usize;
            let dst = ((src as u64 + 1 + rng.below(3)) % 4) as usize;
            let at = busy_until[src] + rng.below(4);
            let path = topo.route(src, dst).unwrap();
            let words = be_packet(path, dst as u8, &[rng.below(1 << 20) as u32]);
            for (i, &w) in words.iter().enumerate() {
                schedule.push((at + i as u64, src, w));
            }
            busy_until[src] = at + words.len() as u64;
        }
        schedule
    }

    /// Runs the schedule on a split 2x2 with the given batch size and
    /// execution mode, driving the runner in *chunks* (so epochs longer
    /// than one cycle actually engage), and returns the full drain trace
    /// of `drain` plus the merged statistics.
    fn batched_observation(
        schedule: &[(u64, NiId, LinkWord)],
        horizon: u64,
        drain: NiId,
        batch: u64,
        parallel: bool,
    ) -> (Vec<(u64, LinkWord)>, NocStats) {
        let topo = Topology::mesh(2, 2, 1);
        let single = Noc::new(&topo);
        let partition = Partition::mesh_rows(2, 2, 2);
        let mut shards = single.split(&topo, &partition);
        let wires = wires_of(&shards);
        let mut runner = ShardRunner::new(shards.len(), wires, 0).with_batch(batch);
        let (ds, dl) = locate(&shards, drain);
        let mut send_cycles: Vec<u64> = schedule.iter().map(|&(at, _, _)| at).collect();
        send_cycles.sort_unstable();
        send_cycles.dedup();
        let mut trace = Vec::new();
        let advance = |runner: &mut ShardRunner,
                       shards: &mut Vec<NocShard>,
                       trace: &mut Vec<(u64, LinkWord)>,
                       cycles: u64| {
            if parallel {
                runner.run_parallel(shards, cycles);
            } else {
                runner.run(shards, cycles);
            }
            let t = runner.cycle();
            while let Some(w) = shards[ds].noc.ni_link_mut(dl).recv() {
                trace.push((t, w));
            }
        };
        let mut t = 0;
        while t < horizon {
            // Jump in one chunk to the next send cycle (or the horizon).
            let next = send_cycles
                .iter()
                .copied()
                .find(|&c| c >= t)
                .unwrap_or(horizon)
                .min(horizon);
            if next > t {
                advance(&mut runner, &mut shards, &mut trace, next - t);
                t = next;
                continue;
            }
            for &(at, ni, w) in schedule {
                if at == t {
                    let (s, l) = locate(&shards, ni);
                    runner.wake(&mut shards, s);
                    shards[s].noc.ni_link_mut(l).send(w);
                }
            }
            advance(&mut runner, &mut shards, &mut trace, 1);
            t += 1;
        }
        (trace, merged(&shards))
    }

    #[test]
    fn batched_runs_are_bit_identical_for_all_batch_sizes() {
        // Randomized traffic; every batch size and both execution modes
        // must produce the identical drain trace and merged statistics.
        for seed in [0xA37Eu64, 0xBEEF, 0x5EED5] {
            let schedule = random_schedule(seed);
            let reference = batched_observation(&schedule, 400, 3, 1, false);
            for batch in [2u64, 3, 7, 16] {
                let seq = batched_observation(&schedule, 400, 3, batch, false);
                assert_eq!(seq, reference, "sequential batch {batch} diverged");
            }
            for batch in [1u64, 7, 16] {
                let par = batched_observation(&schedule, 400, 3, batch, true);
                assert_eq!(par, reference, "parallel batch {batch} diverged");
            }
        }
    }

    // ---- GT-calendar sleep -------------------------------------------

    #[test]
    fn calendar_only_regions_sleep_to_the_due_cycle() {
        // A GT worm crosses the cut; after the words leave the NI links,
        // the only pending state is router calendars — the regions must
        // report quiescence with the next due cycle as horizon instead of
        // ticking through the wait.
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        assert!(noc.drained());
        let path = topo.route(0, 3).unwrap();
        let h = PacketHeader {
            path,
            qid: 1,
            credits: 0,
            flush: false,
        };
        noc.ni_link_mut(0)
            .send(LinkWord::header_only(h.pack(), WordClass::Guaranteed));
        noc.tick();
        // The header sits in router 0's calendar, due one slot after its
        // cycle-0 absorb.
        assert!(!noc.drained(), "calendar entry pending");
        assert!(Clocked::quiescent(&noc), "calendar-only state is dormant");
        let due = noc.next_event(noc.now());
        assert_eq!(due, SLOT_WORDS, "due one slot after absorb");
        // The engine sleeps to the due cycle and the word still arrives on
        // schedule, bit-identical to per-cycle ticking.
        let mut by_tick = noc.clone();
        noc.run(40);
        for _ in 0..40 {
            by_tick.tick();
        }
        assert_eq!(noc.stats(), by_tick.stats());
        let a: Vec<_> = std::iter::from_fn(|| noc.ni_link_mut(3).recv()).collect();
        let b: Vec<_> = std::iter::from_fn(|| by_tick.ni_link_mut(3).recv()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert!(noc.drained(), "worm fully delivered");
    }

    #[test]
    fn shard_regions_sleep_on_calendar_horizons() {
        let (_, _, mut shards, mut runner) = split_2x2();
        let topo = Topology::mesh(2, 2, 1);
        let path = topo.route(0, 3).unwrap();
        let h = PacketHeader {
            path,
            qid: 1,
            credits: 0,
            flush: false,
        };
        let (s, l) = locate(&shards, 0);
        runner.wake(&mut shards, s);
        shards[s]
            .noc
            .ni_link_mut(l)
            .send(LinkWord::header_only(h.pack(), WordClass::Guaranteed));
        runner.run(&mut shards, 2);
        // The word is in shard 0's router calendar; with batch 1 the shard
        // falls asleep until the due cycle instead of staying awake.
        assert!(
            runner.awake_count() < 2,
            "calendar-only region left the activity set"
        );
        runner.run(&mut shards, 40);
        let (ds, dl) = locate(&shards, 3);
        let got: Vec<_> = std::iter::from_fn(|| shards[ds].noc.ni_link_mut(dl).recv()).collect();
        assert_eq!(got.len(), 1, "GT word crossed the cut on schedule");
        // With the destination inbox drained, the next epoch puts every
        // region to sleep.
        runner.run(&mut shards, 5);
        assert_eq!(runner.awake_count(), 0, "fully drained: all asleep");
    }

    #[test]
    fn idle_shards_leave_the_activity_set() {
        let (_, _, mut shards, mut runner) = split_2x2();
        runner.run(&mut shards, 10);
        assert_eq!(runner.awake_count(), 0, "an idle mesh fully sleeps");
        assert_eq!(runner.cycle(), 10);
        for s in &shards {
            assert_eq!(s.now(), 10, "sleepers are caught up at span end");
        }
    }

    #[test]
    fn single_shard_partition_degenerates_cleanly() {
        let topo = Topology::mesh(2, 2, 1);
        let single = Noc::new(&topo);
        let shards = single.clone().split(&topo, &Partition::single(4));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].noc.boundary_count(), 0);
        assert!(wires_of(&shards).is_empty());
    }

    // ---- Activity-set property: never skip past the horizon ----------

    /// A scripted region: quiescent except at its event cycles, asserting
    /// on every skip that it is never advanced past its reported horizon.
    struct Probe {
        noc: Noc,
        cycle: u64,
        events: Vec<u64>,
        ticked_at: Vec<u64>,
    }

    impl Probe {
        fn new(events: Vec<u64>) -> Self {
            // A minimal one-router network; the probe's own state machine
            // carries the scripted activity.
            let topo = Topology::custom(vec![1], Vec::new(), Vec::new());
            Probe {
                noc: Noc::new(&topo),
                cycle: 0,
                events,
                ticked_at: Vec::new(),
            }
        }
    }

    impl Clocked for Probe {
        fn now(&self) -> u64 {
            self.cycle
        }

        fn emit(&mut self) {}

        fn absorb(&mut self) {
            self.ticked_at.push(self.cycle);
            self.cycle += 1;
        }

        fn quiescent(&self) -> bool {
            !self.events.contains(&self.cycle)
        }

        fn skip(&mut self, cycles: u64) {
            let target = self.cycle + cycles;
            let horizon = self.next_event(self.cycle);
            assert!(
                target <= horizon,
                "skipped from {} to {target}, past horizon {horizon}",
                self.cycle
            );
            self.cycle = target;
        }

        fn next_event(&self, now: u64) -> u64 {
            self.events
                .iter()
                .copied()
                .filter(|&e| e > now)
                .min()
                .unwrap_or(u64::MAX)
        }
    }

    impl ShardRegion for Probe {
        fn shard_noc(&self) -> &Noc {
            &self.noc
        }

        fn shard_noc_mut(&mut self) -> &mut Noc {
            &mut self.noc
        }
    }

    #[test]
    fn regions_never_skip_past_their_next_event_horizon() {
        // Randomized event schedules across several regions and spans; the
        // Probe asserts the horizon property inside every skip call.
        let mut rng = Rng64::seed_from_u64(0x5EED);
        for _ in 0..50 {
            let n = 1 + rng.below(4) as usize;
            let mut probes: Vec<Probe> = (0..n)
                .map(|_| {
                    let events = (0..rng.below(6)).map(|_| rng.below(200)).collect();
                    Probe::new(events)
                })
                .collect();
            let span = 50 + rng.below(200);
            let mut runner = ShardRunner::new(n, Vec::new(), 0);
            runner.run(&mut probes, span);
            for p in &probes {
                assert_eq!(p.now(), span, "caught up at span end");
                // Every scripted event within the span was actually ticked,
                // not skipped over.
                for &e in &p.events {
                    if e < span {
                        assert!(
                            p.ticked_at.contains(&e),
                            "event at {e} was skipped (ticks: {:?})",
                            p.ticked_at
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_run_on_a_region_still_works() {
        // The shard runner composes with the engine: a region is still a
        // Clocked fabric for Engine::run.
        let mut p = Probe::new(vec![5]);
        Engine::run(&mut p, 20);
        assert_eq!(p.now(), 20);
        assert!(p.ticked_at.contains(&5));
    }
}
