//! Sharded lockstep execution: cut a NoC at link boundaries and run the
//! pieces as independent [`Clocked`] regions with per-region idle skipping.
//!
//! # Why links are the right cut
//!
//! The Æthereal guarantees come from contention-free GT slot scheduling, so
//! router-to-router links are the **only** coupling between regions of a
//! mesh: a word emitted onto a link in cycle *t* is registered by the far
//! router in the same cycle's absorb phase, and the only state flowing the
//! other way is the link-level BE credit earned when the far input dequeues.
//! Cutting at links therefore decomposes the network exactly — each piece
//! keeps the full two-phase cycle contract, and the cross-shard wires become
//! *mailboxes* whose contents are exchanged between the global emit and
//! absorb phases. The exchange at the phase barrier preserves the race-free
//! discipline: every emit still reads only previous-cycle state, every
//! absorb registers exactly what a wired link would have carried.
//!
//! # The pieces
//!
//! * [`Partition`] — the router → shard assignment, with validation and the
//!   cut-edge computation over a [`Topology`];
//! * [`Noc::split`](crate::Noc::split) — moves routers, NI handles and
//!   per-link counters of a drained network into per-shard [`Noc`]s whose
//!   cut ports are boundary mailboxes (see [`NocShard`]);
//! * [`ShardRunner`] — the slack-batched driver over the **arena-fused
//!   exchange**: every directed cut wire owns one preallocated,
//!   cache-line-padded SPSC [`WireRing`] in a shared [`BoundaryArena`].
//!   A fused region's emit phase writes boundary words and credits
//!   directly into the ring slot of the emitting cycle, and the consuming
//!   region's absorb phase consumes each slot at **exactly** its due
//!   cycle — zero allocation, zero copying through intermediate queues,
//!   and the cut link's one-cycle latency is never shortened or
//!   stretched. The runner amortizes its *scheduling* work over
//!   [`ShardRunner::set_batch`]-sized epochs: activity-set decisions
//!   (quiescence walks, [`Clocked::next_event`] horizons) run once per
//!   epoch instead of once per cycle. [`ShardRunner::run_parallel`] is
//!   **pipelined**: there is no epoch barrier at all — a worker is gated
//!   only by the per-wire published-cycle watermarks of its inbound
//!   rings, so it begins epoch N+1's interior cycles while epoch N's cut
//!   words are still draining on the neighbour's side. Regions that
//!   report themselves quiescent leave the activity set and sleep until
//!   their [`Clocked::next_event`] horizon — which includes the next due
//!   cycle of a pending router GT calendar — or until a boundary
//!   word/credit arrives for them, at which point they are caught up with
//!   one exact [`Clocked::skip`].
//!
//! # Why the watermark dependency suffices
//!
//! Consumer cycle `t` needs exactly the producer's emit of cycle `t`
//! (the cut link registers a word in the same cycle's absorb). Each cut
//! edge yields a wire in *both* directions, so two adjacent regions gate
//! each other symmetrically: a region emitting cycle `t` has already
//! waited for every inbound watermark to pass `t − 1`, which bounds the
//! skew between wire-adjacent regions to one cycle — at most the slot of
//! cycle `t − 1` (not yet consumed) and the slot of cycle `t` (being
//! written) are in flight on any wire, which is why the tiny
//! power-of-two ring of [`RING_SLOTS`] slots never overruns (asserted,
//! and model-checked in `testkit`). Non-adjacent regions may drift a
//! whole batch apart; they share no wire, so nothing observes the drift.
//!
//! A sharded run is **bit-identical** to ticking the unsplit fabric — for
//! any batch size, in both execution modes: batching and pipelining
//! amortize scheduling and synchronization, never the data exchange. The
//! per-shard statistics merge back onto the global link numbering via
//! [`merge_noc_stats`], pinned by the parity tests here and in the facade
//! crate.

use crate::engine::Clocked;
use crate::link::LinkId;
use crate::noc::Noc;
use crate::path::PortIdx;
use crate::stats::NocStats;
use crate::sync::{AtomicU64Cell, Ordering, StdSync, SyncFamily};
use crate::topology::{NiId, RouterId, Topology};
use crate::word::LinkWord;

/// A router → shard assignment over a topology.
///
/// Shard ids must be dense (`0..shards()`, every shard non-empty). NIs
/// always follow their attachment router, so every cut is an inter-router
/// link — the property that makes the decomposition exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shard_of: Vec<usize>,
    shards: usize,
}

/// Why a shard assignment is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The assignment is empty.
    Empty,
    /// A shard id in `0..shards` owns no router.
    EmptyShard {
        /// The unowned shard id.
        shard: usize,
    },
    /// The assignment length does not match the topology's router count.
    WrongLength {
        /// Routers in the assignment.
        got: usize,
        /// Routers in the topology.
        want: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Empty => write!(f, "empty partition"),
            PartitionError::EmptyShard { shard } => write!(f, "shard {shard} owns no router"),
            PartitionError::WrongLength { got, want } => {
                write!(f, "partition covers {got} routers but topology has {want}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// One cut inter-router edge: the two half-links the partition separated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutEdge {
    /// Index of the edge in [`Topology::edges`].
    pub edge: usize,
    /// Shard owning side `a`.
    pub a_shard: usize,
    /// Router on side `a` (global id).
    pub a_router: RouterId,
    /// Port on side `a`.
    pub a_port: PortIdx,
    /// Shard owning side `b`.
    pub b_shard: usize,
    /// Router on side `b` (global id).
    pub b_router: RouterId,
    /// Port on side `b`.
    pub b_port: PortIdx,
}

/// One shard's slice of a topology, with local↔global id maps.
#[derive(Debug, Clone)]
pub struct ShardPiece {
    /// The shard's own topology (cut ports left unconnected).
    pub topology: Topology,
    /// Local router id → global router id (ascending).
    pub routers: Vec<RouterId>,
    /// Local NI id → global NI id (ascending).
    pub nis: Vec<NiId>,
    /// Local edge index → global edge index.
    pub edge_map: Vec<usize>,
}

impl Partition {
    /// Creates a partition from a router → shard map.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the map is empty or shard ids are not
    /// dense.
    pub fn new(shard_of: Vec<usize>) -> Result<Self, PartitionError> {
        if shard_of.is_empty() {
            return Err(PartitionError::Empty);
        }
        let shards = shard_of.iter().copied().max().unwrap_or(0) + 1;
        for s in 0..shards {
            if !shard_of.contains(&s) {
                return Err(PartitionError::EmptyShard { shard: s });
            }
        }
        Ok(Partition { shard_of, shards })
    }

    /// The trivial one-shard partition of `routers` routers.
    pub fn single(routers: usize) -> Self {
        Partition::new(vec![0; routers.max(1)]).expect("single shard is dense")
    }

    /// Cuts a `width × height` mesh into `shards` horizontal row bands —
    /// the canonical mesh cut, crossing only vertical (north/south) links.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds `height`.
    pub fn mesh_rows(width: usize, height: usize, shards: usize) -> Self {
        assert!(shards >= 1 && shards <= height, "need 1..=height row bands");
        let shard_of = (0..width * height)
            .map(|r| (r / width) * shards / height)
            .collect();
        Partition::new(shard_of).expect("row bands are dense")
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning router `r`.
    pub fn shard_of(&self, r: RouterId) -> usize {
        self.shard_of[r]
    }

    /// The shard owning NI `ni` of `topology` (its attachment router's
    /// shard).
    pub fn shard_of_ni(&self, topology: &Topology, ni: NiId) -> usize {
        let (r, _) = topology.ni_attachment(ni).expect("ni in range");
        self.shard_of[r]
    }

    /// Checks the partition against a topology: the map must cover every
    /// router, and every cut must be an inter-router link. The latter holds
    /// by construction — NIs attach to exactly one router and follow it —
    /// and is re-asserted while enumerating the cuts.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn validate(&self, topology: &Topology) -> Result<(), PartitionError> {
        if self.shard_of.len() != topology.router_count() {
            return Err(PartitionError::WrongLength {
                got: self.shard_of.len(),
                want: topology.router_count(),
            });
        }
        Ok(())
    }

    /// The inter-router edges this partition cuts, in global edge order.
    pub fn cut_edges(&self, topology: &Topology) -> Vec<CutEdge> {
        topology
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| self.shard_of[e.a] != self.shard_of[e.b])
            .map(|(k, e)| CutEdge {
                edge: k,
                a_shard: self.shard_of[e.a],
                a_router: e.a,
                a_port: e.port_a,
                b_shard: self.shard_of[e.b],
                b_router: e.b,
                b_port: e.port_b,
            })
            .collect()
    }

    /// Extracts each shard's topology slice with its id maps.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not validate against `topology`.
    pub fn pieces(&self, topology: &Topology) -> Vec<ShardPiece> {
        self.validate(topology).expect("partition fits topology");
        (0..self.shards)
            .map(|s| {
                let routers: Vec<RouterId> = (0..topology.router_count())
                    .filter(|&r| self.shard_of[r] == s)
                    .collect();
                let mut local_of = vec![usize::MAX; topology.router_count()];
                for (lr, &gr) in routers.iter().enumerate() {
                    local_of[gr] = lr;
                }
                let router_ports = routers.iter().map(|&r| topology.ports_of(r)).collect();
                let mut edge_map = Vec::new();
                let mut edges = Vec::new();
                for (k, e) in topology.edges().iter().enumerate() {
                    if self.shard_of[e.a] == s && self.shard_of[e.b] == s {
                        edge_map.push(k);
                        edges.push(crate::topology::RouterEdge {
                            a: local_of[e.a],
                            port_a: e.port_a,
                            b: local_of[e.b],
                            port_b: e.port_b,
                        });
                    }
                }
                let mut nis = Vec::new();
                let mut ni_attach = Vec::new();
                for ni in 0..topology.ni_count() {
                    let (r, p) = topology.ni_attachment(ni).expect("ni in range");
                    if self.shard_of[r] == s {
                        nis.push(ni);
                        ni_attach.push((local_of[r], p));
                    }
                }
                ShardPiece {
                    topology: Topology::custom(router_ports, edges, ni_attach),
                    routers,
                    nis,
                    edge_map,
                }
            })
            .collect()
    }
}

/// One shard produced by [`Noc::split`]: the shard network plus the maps
/// that tie its local numbering back to the global one.
#[derive(Debug, Clone)]
pub struct NocShard {
    /// The shard's network, cut ports opened as boundaries in
    /// [`Partition::cut_edges`] order.
    pub noc: Noc,
    /// Local router id → global router id.
    pub routers: Vec<RouterId>,
    /// Local NI id → global NI id.
    pub nis: Vec<NiId>,
    /// Local link id → global link id.
    pub link_map: Vec<LinkId>,
    /// Boundary id → global id of the directed link whose words this side
    /// ingests.
    pub boundary_links: Vec<LinkId>,
    /// Boundary id → index into [`Partition::cut_edges`].
    pub cuts: Vec<usize>,
}

impl Clocked for NocShard {
    fn now(&self) -> u64 {
        self.noc.now()
    }

    fn emit(&mut self) {
        self.noc.emit();
    }

    fn absorb(&mut self) {
        self.noc.absorb();
    }

    fn quiescent(&self) -> bool {
        self.noc.quiescent()
    }

    fn skip(&mut self, cycles: u64) {
        self.noc.skip(cycles);
    }

    fn next_event(&self, now: u64) -> u64 {
        self.noc.next_event(now)
    }
}

impl ShardRegion for NocShard {
    fn shard_noc(&self) -> &Noc {
        &self.noc
    }

    fn shard_noc_mut(&mut self) -> &mut Noc {
        &mut self.noc
    }
}

/// One directed cross-shard wire: the mailbox route from a source shard's
/// boundary to the destination shard's boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryWire {
    /// Producing shard.
    pub src_shard: usize,
    /// Boundary id within the producing shard.
    pub src_boundary: usize,
    /// Consuming shard.
    pub dst_shard: usize,
    /// Boundary id within the consuming shard.
    pub dst_boundary: usize,
}

/// Enumerates the directed cross-shard wires of a split, one per boundary
/// (each boundary is the source of exactly one directed cut link).
pub fn wires_of(shards: &[NocShard]) -> Vec<BoundaryWire> {
    let mut wires = Vec::new();
    for (s, shard) in shards.iter().enumerate() {
        for (b, &cut) in shard.cuts.iter().enumerate() {
            let (ds, db) = shards
                .iter()
                .enumerate()
                .find_map(|(s2, sh2)| {
                    if s2 == s {
                        return None;
                    }
                    sh2.cuts.iter().position(|&c| c == cut).map(|b2| (s2, b2))
                })
                .expect("every cut has two sides");
            wires.push(BoundaryWire {
                src_shard: s,
                src_boundary: b,
                dst_shard: ds,
                dst_boundary: db,
            });
        }
    }
    wires
}

/// Reconstructs the global [`NocStats`] from per-shard networks and their
/// link maps, bit-identical to the unsplit network's counters. `parts`
/// yields `(shard network, link_map, boundary_links)` triples.
///
/// # Panics
///
/// Panics if the shards are not at the same cycle.
pub fn merge_noc_stats<'a, I>(parts: I) -> NocStats
where
    I: IntoIterator<Item = (&'a Noc, &'a [LinkId], &'a [LinkId])> + Clone,
{
    let total_links = parts
        .clone()
        .into_iter()
        .flat_map(|(_, lm, bl)| lm.iter().chain(bl.iter()).copied())
        .max()
        .map_or(0, |m| m + 1);
    let mut merged = NocStats::new(total_links);
    let mut first = true;
    for (noc, link_map, boundary_links) in parts {
        let st = noc.stats();
        if first {
            merged.cycles = st.cycles;
            first = false;
        }
        assert_eq!(st.cycles, merged.cycles, "shards out of lockstep");
        merged.gt_conflicts += st.gt_conflicts;
        merged.be_overflows += st.be_overflows;
        merged.delivered[0] += st.delivered[0];
        merged.delivered[1] += st.delivered[1];
        for (l, &g) in link_map.iter().enumerate() {
            merged.links[g] = st.links[l];
        }
        for (b, &g) in boundary_links.iter().enumerate() {
            merged.links[g] = *noc.boundary_stats(b);
        }
    }
    merged
}

/// A [`Clocked`] region with boundary-mailbox access — the shape the shard
/// runner drives. Implemented by [`Noc`] itself (pure-network shards) and
/// by `aethereal-cfg`'s `NocSystem` (full-system shards).
pub trait ShardRegion: Clocked + Send {
    /// The region's network (owner of the boundary mailboxes).
    fn shard_noc(&self) -> &Noc;

    /// Mutable access to the region's network.
    fn shard_noc_mut(&mut self) -> &mut Noc;

    /// Offers the region up to `max` cycles of analytical fast-forward
    /// (see [`crate::ff`]). Called by [`ShardRunner::run`] only while this
    /// region is the *sole* awake region and every sleeper's wake horizon
    /// lies beyond the offered window, so nothing can interact with it.
    /// The implementor owns all eligibility checking — in particular it
    /// must decline unless its boundaries are silent and every live
    /// circuit stays inside the region, because the probe ticks the
    /// region alone, outside the runner's boundary exchange.
    ///
    /// The default declines: plain network shards fall back to the
    /// quiescent-skip path, which already covers their drained states.
    fn fast_forward_region(&mut self, max: u64) -> crate::ff::FfOutcome {
        let _ = max;
        crate::ff::FfOutcome::DECLINED
    }
}

impl ShardRegion for Noc {
    fn shard_noc(&self) -> &Noc {
        self
    }

    fn shard_noc_mut(&mut self) -> &mut Noc {
        self
    }
}

/// Slots per [`WireRing`]. A power of two (the ring indexes with a mask).
///
/// Two is the proven in-flight maximum — wire pairs bound the skew of
/// adjacent regions to one cycle, so at most the previous cycle's slot
/// (unconsumed) and the current cycle's slot (being written) coexist —
/// four leaves one asserted-empty guard slot on either side.
pub const RING_SLOTS: usize = 4;

/// The packed-word encoding of an empty slot (see
/// [`LinkWord::pack_u64`]).
const EMPTY_WORD: u64 = 0;

/// Pads (and aligns) a value to two cache lines, so neighbouring wires'
/// hot atomics never share a line (128 bytes also defeats adjacent-line
/// prefetching on common cores).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

/// One slot of a [`WireRing`]: the traffic one cut wire carries in one
/// specific cycle, held in place in three atomic cells. `stamp` is the
/// due cycle plus one (`0` = empty); `word` is the packed [`LinkWord`]
/// or [`EMPTY_WORD`]; `credits` counts link-level BE credits earned for
/// the wire's producer.
struct WireSlot<S: SyncFamily> {
    stamp: S::AtomicU64,
    word: S::AtomicU64,
    credits: S::AtomicU64,
}

impl<S: SyncFamily> WireSlot<S> {
    fn new() -> Self {
        WireSlot {
            stamp: S::AtomicU64::new(0),
            word: S::AtomicU64::new(EMPTY_WORD),
            credits: S::AtomicU64::new(0),
        }
    }
}

/// One directed cut wire's preallocated SPSC exchange ring: the producer
/// region's emit phase writes words and credits **in place** into the
/// slot of the emitting cycle, and the consumer region's absorb phase
/// consumes the slot at exactly its due cycle — no allocation, no queue,
/// no copy in between.
///
/// The `published` watermark (first cycle *not* yet final) is the only
/// cross-region gate: once the producer publishes past `t`, no further
/// write stamped ≤ `t` can appear, so the consumer may absorb cycle `t`
/// — and, transitively, start later cycles — without any global barrier.
/// Slot cells are written with release ordering — a plain store on x86,
/// so this costs nothing on the target — making every slot write's
/// visibility self-contained rather than carried solely by the
/// subsequent watermark publish. The release-publish / acquire-wait pair
/// still carries the cross-region happens-before edge (the consumer's
/// slot clears travel back to the producer over the paired reverse
/// wire's watermark the same way), and it also keeps the model checker's
/// exploration tractable: release-class stores commit eagerly, so slot
/// writes add no delayed-store nondeterminism.
///
/// Generic over the [`SyncFamily`] shim so the `testkit::mc` model
/// checker explores this exact protocol on instrumented cells;
/// production uses the zero-cost [`StdSync`] default.
pub struct WireRing<S: SyncFamily = StdSync> {
    /// First cycle whose boundary traffic is not yet final.
    published: S::AtomicU64,
    slots: [WireSlot<S>; RING_SLOTS],
}

impl<S: SyncFamily> std::fmt::Debug for WireRing<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireRing")
            .field("published", &self.published.load(Ordering::Relaxed))
            .finish()
    }
}

impl<S: SyncFamily> WireRing<S> {
    /// Creates a ring whose first unpublished cycle is `start`.
    pub fn new(start: u64) -> Self {
        WireRing {
            published: S::AtomicU64::new(start),
            slots: std::array::from_fn(|_| WireSlot::new()),
        }
    }

    #[inline]
    fn slot(&self, t: u64) -> &WireSlot<S> {
        &self.slots[(t as usize) & (RING_SLOTS - 1)]
    }

    /// Producer: claims cycle `t`'s slot (stamping it on first use).
    ///
    /// # Panics
    ///
    /// Panics if the slot still holds an unconsumed earlier cycle — the
    /// ring overran, i.e. the watermark discipline was violated.
    #[inline]
    fn occupy(&self, t: u64) -> &WireSlot<S> {
        let slot = self.slot(t);
        let stamp = slot.stamp.load(Ordering::Relaxed);
        if stamp != t + 1 {
            assert_eq!(
                stamp,
                0,
                "wire ring overrun: cycle {} still unconsumed while emitting cycle {t}",
                stamp.wrapping_sub(1)
            );
            slot.stamp.store(t + 1, Ordering::Release);
        }
        slot
    }

    /// Producer: places the word cycle `t` carries (at most one per
    /// cycle) into the ring, in place.
    pub fn send_word(&self, t: u64, word: LinkWord) {
        let slot = self.occupy(t);
        debug_assert_eq!(
            slot.word.load(Ordering::Relaxed),
            EMPTY_WORD,
            "one word per wire per cycle"
        );
        slot.word.store(word.pack_u64(), Ordering::Release);
    }

    /// Producer: adds link-level BE credits to cycle `t`'s slot.
    pub fn send_credits(&self, t: u64, credits: u32) {
        let slot = self.occupy(t);
        let cur = slot.credits.load(Ordering::Relaxed);
        slot.credits
            .store(cur + u64::from(credits), Ordering::Release);
    }

    /// Producer: marks cycle `t` final — every write stamped ≤ `t` is in
    /// the ring. The release store pairs with [`WireRing::wait_published`].
    pub fn publish(&self, t: u64) {
        self.published.store(t + 1, Ordering::Release);
    }

    /// Consumer: blocks (spin-then-yield under [`StdSync`]) until cycle
    /// `t` is final.
    pub fn wait_published(&self, t: u64) {
        S::spin_until(|| self.published.load(Ordering::Acquire) > t);
    }

    /// Consumer: whether the wire carries traffic due exactly at `t`
    /// (call only after [`WireRing::wait_published`]).
    pub fn has_due(&self, t: u64) -> bool {
        self.slot(t).stamp.load(Ordering::Relaxed) == t + 1
    }

    /// The earliest pending due cycle at or after `from`, scanning all
    /// slots (the cooperative-wake probe of [`ShardRunner::wake`]).
    pub fn next_due(&self, from: u64) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|s| match s.stamp.load(Ordering::Relaxed) {
                0 => None,
                stamp => Some(stamp - 1),
            })
            .filter(|&due| due >= from)
            .min()
    }

    /// Consumer: consumes cycle `t`'s traffic, if the wire carried any
    /// then, clearing the slot for reuse. A slot with a later stamp lives
    /// in a different ring position, so traffic is **never** surfaced
    /// before its due cycle, no matter how far ahead the producer ran.
    ///
    /// # Panics
    ///
    /// Panics if the slot holds an *earlier* stamp: the consumer skipped
    /// a cycle in which the wire carried traffic.
    pub fn take_due(&self, t: u64) -> Option<(Option<LinkWord>, u32)> {
        let slot = self.slot(t);
        let stamp = slot.stamp.load(Ordering::Relaxed);
        if stamp == 0 {
            return None;
        }
        assert_eq!(
            stamp,
            t + 1,
            "wire slot due {} was missed (absorb at {t})",
            stamp.wrapping_sub(1)
        );
        let word = LinkWord::unpack_u64(slot.word.load(Ordering::Relaxed));
        let credits = slot.credits.load(Ordering::Relaxed) as u32;
        slot.word.store(EMPTY_WORD, Ordering::Release);
        slot.credits.store(0, Ordering::Release);
        slot.stamp.store(0, Ordering::Release);
        Some((word, credits))
    }

    /// Whether no slot holds unconsumed traffic (any due cycle).
    pub fn is_silent(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.stamp.load(Ordering::Relaxed) == 0)
    }

    /// Occupied slots (unconsumed due cycles) — fast-forward audit state.
    pub fn occupied(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.stamp.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// Resets the watermark to first-unpublished = `start` without
    /// touching slots. [`ShardRunner::run_parallel`] rebases every ring at
    /// entry: watermarks are meaningless between parallel spans (the
    /// sequential runner and fast-forward jumps never advance them).
    pub fn rebase(&self, start: u64) {
        self.published.store(start, Ordering::Relaxed);
    }

    /// Unconsumed slots as `(due, packed word, credits)` triples, in due
    /// order — the ring's entire dynamic state besides the watermark.
    pub fn occupied_slots(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = self
            .slots
            .iter()
            .filter_map(|s| match s.stamp.load(Ordering::Relaxed) {
                0 => None,
                stamp => Some((
                    stamp - 1,
                    s.word.load(Ordering::Relaxed),
                    s.credits.load(Ordering::Relaxed),
                )),
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Empties every slot (the restore entry point; the watermark is left
    /// untouched — re-derive it with [`WireRing::rebase`]).
    pub fn clear_slots(&self) {
        for s in &self.slots {
            s.word.store(EMPTY_WORD, Ordering::Relaxed);
            s.credits.store(0, Ordering::Relaxed);
            s.stamp.store(0, Ordering::Relaxed);
        }
    }

    /// Re-places one unconsumed due cycle into the ring at its home index
    /// `due & (RING_SLOTS - 1)` — the index is a function of the due
    /// cycle, **not** of the slot's position in any earlier run, which is
    /// exactly why restore must route through this instead of writing
    /// slots in order. Returns `false` (leaving the ring unchanged) if
    /// that home slot already holds another due cycle.
    pub fn restore_slot(&self, due: u64, word: u64, credits: u64) -> bool {
        let slot = self.slot(due);
        if slot.stamp.load(Ordering::Relaxed) != 0 {
            return false;
        }
        slot.word.store(word, Ordering::Relaxed);
        slot.credits.store(credits, Ordering::Relaxed);
        slot.stamp.store(due + 1, Ordering::Relaxed);
        true
    }

    /// Persists the ring's unconsumed traffic through the audited walk:
    /// a length (occupied slot count) followed by one
    /// `(due, packed word, credits)` triple per slot, in due order. The
    /// walk always clears and re-places the slots — a save rewrites the
    /// values it just read (a no-op), a load re-derives every slot's home
    /// index from its restored due cycle. The published watermark is
    /// deliberately **not** part of the walk: it is meaningless between
    /// runner spans and must be re-derived from the restored cycle via
    /// [`WireRing::rebase`].
    pub fn persist_slots(&self, p: &mut dyn crate::persist::PersistVisit) {
        let mut entries = self.occupied_slots();
        let n = p.len(entries.len());
        if n > RING_SLOTS {
            p.fail("snapshot carries more ring slots than RING_SLOTS");
            return;
        }
        entries.resize(n, (0, 0, 0));
        for e in &mut entries {
            p.item(&mut e.0);
            p.item(&mut e.1);
            p.item(&mut e.2);
        }
        self.clear_slots();
        for &(due, word, credits) in &entries {
            if !self.restore_slot(due, word, credits) {
                p.fail("snapshot ring slots alias the same home index");
                return;
            }
        }
    }
}

/// The preallocated exchange arena of one split: one cache-line-padded
/// [`WireRing`] per directed cut wire, indexed like the
/// [`wires_of`]-enumerated wire table. Shared (via `Arc`) between the
/// [`ShardRunner`] and every fused region's network, which reads and
/// writes its rings in place from the engine phases themselves.
pub struct BoundaryArena {
    rings: Vec<CachePadded<WireRing>>,
}

impl std::fmt::Debug for BoundaryArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundaryArena")
            .field("wires", &self.rings.len())
            .finish()
    }
}

impl BoundaryArena {
    /// Creates an arena of `wires` rings starting at cycle `start`.
    pub fn new(wires: usize, start: u64) -> Self {
        BoundaryArena {
            rings: (0..wires)
                .map(|_| CachePadded(WireRing::new(start)))
                .collect(),
        }
    }

    /// The ring of wire `i`.
    #[inline]
    pub fn ring(&self, i: usize) -> &WireRing {
        &self.rings[i].0
    }

    /// All rings, in wire order.
    pub fn rings(&self) -> &[CachePadded<WireRing>] {
        &self.rings
    }

    /// Number of wires.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Whether the arena has no wires.
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// Rebases every ring's watermark (see [`WireRing::rebase`]).
    pub fn rebase(&self, start: u64) {
        for r in &self.rings {
            r.0.rebase(start);
        }
    }
}

/// A fused region's handle onto the shared [`BoundaryArena`]: the arena
/// plus this region's boundary-id → wire-index maps. With the attachment
/// installed (see [`crate::Noc::attach_exchange`]), the network's emit
/// phase writes cut-wire words and credits straight into the arena and
/// its absorb phase consumes due slots straight out of it — the
/// region-pair-fused exchange path, used identically by the sequential
/// and the worker-thread runner.
#[derive(Debug, Clone)]
pub struct ExchangeAttachment {
    arena: std::sync::Arc<BoundaryArena>,
    /// `out_wire[boundary]` = wire this boundary produces onto.
    out_wire: Vec<usize>,
    /// `in_wire[boundary]` = wire this boundary consumes from.
    in_wire: Vec<usize>,
}

impl ExchangeAttachment {
    /// Creates the attachment for one region.
    ///
    /// # Panics
    ///
    /// Panics if a wire index is out of the arena's range.
    pub fn new(
        arena: std::sync::Arc<BoundaryArena>,
        out_wire: Vec<usize>,
        in_wire: Vec<usize>,
    ) -> Self {
        assert_eq!(
            out_wire.len(),
            in_wire.len(),
            "every boundary has one wire per direction"
        );
        assert!(
            out_wire
                .iter()
                .chain(in_wire.iter())
                .all(|&i| i < arena.len()),
            "wire index out of arena range"
        );
        ExchangeAttachment {
            arena,
            out_wire,
            in_wire,
        }
    }

    /// Number of boundaries the maps cover.
    pub fn boundaries(&self) -> usize {
        self.out_wire.len()
    }

    /// The ring boundary `b` produces onto.
    #[inline]
    pub fn out_ring(&self, b: usize) -> &WireRing {
        self.arena.ring(self.out_wire[b])
    }

    /// The ring boundary `b` consumes from.
    #[inline]
    pub fn in_ring(&self, b: usize) -> &WireRing {
        self.arena.ring(self.in_wire[b])
    }

    /// Whether every wire this region touches is silent in both
    /// directions (the fast-forward boundary gate).
    pub fn silent(&self) -> bool {
        self.out_wire
            .iter()
            .chain(self.in_wire.iter())
            .all(|&i| self.arena.ring(i).is_silent())
    }

    /// Total occupied slots across this region's wires (audit state for
    /// [`crate::Noc::ff_visit`]).
    pub fn occupied(&self) -> usize {
        self.out_wire
            .iter()
            .chain(self.in_wire.iter())
            .map(|&i| self.arena.ring(i).occupied())
            .sum()
    }
}

/// One worker's view of the shared exchange state in
/// [`ShardRunner::run_parallel`]: every wire's ring and this region's
/// inbound/outbound wire lists. There is no barrier — the per-wire
/// published-cycle watermarks are the only cross-worker gate.
///
/// Public (with [`run_worker`]) so the model checker drives the *same*
/// protocol code the production runner executes, not a re-implementation.
pub struct ExchangeSlice<'a, S: SyncFamily = StdSync> {
    /// Per-wire exchange rings, indexed like `wires`.
    pub rings: &'a [CachePadded<WireRing<S>>],
    /// The cross-shard wire table (for destination boundary lookups).
    pub wires: &'a [BoundaryWire],
    /// Wire indices this region produces onto.
    pub out_list: &'a [usize],
    /// Wire indices this region consumes from.
    pub in_list: &'a [usize],
    /// `my_wire[boundary]` = outbound wire index of that boundary.
    pub my_wire: &'a [usize],
}

/// One worker thread's body in [`ShardRunner::run_parallel`]: runs `region`
/// from cycle `start` to `end`, exchanging boundary traffic through the
/// arena rings and published-cycle watermarks of `slice`. Returns the
/// region's final `(awake, wake_at)` scheduler state.
///
/// There is no epoch barrier: a worker starts cycle `t` the moment every
/// inbound wire has published past `t − 1`, so one region's interior cycles
/// of epoch N+1 overlap another's cut-word drain of epoch N. Sleep
/// decisions are re-evaluated every `batch` cycles, purely locally. The
/// watermark dependency chain bounds wire-adjacent skew to one cycle (see
/// the module docs), which is also what keeps every [`WireRing`] within
/// its [`RING_SLOTS`] capacity.
///
/// A region whose network holds an [`ExchangeAttachment`] (the fused path,
/// installed by [`ShardRunner::fuse`]) emits cut words straight into the
/// rings and absorbs due slots straight out of them; the worker then only
/// publishes, waits, and runs wake checks. An unfused region is bridged
/// through its dirty lists, word by word — the model-checker harness uses
/// this path to drive plain [`Noc`] regions.
///
/// The caller must invoke this once per region, concurrently, with every
/// worker sharing the same ring slice.
pub fn run_worker<R: ShardRegion, S: SyncFamily>(
    region: &mut R,
    slice: &ExchangeSlice<'_, S>,
    start: u64,
    end: u64,
    batch: u64,
    mut awake: bool,
    mut wake_at: u64,
) -> (bool, u64) {
    let (rings, wires) = (slice.rings, slice.wires);
    let fused = region.shard_noc().exchange_attached();
    let mut t = start;
    while t < end {
        let t1 = end.min(t + batch);
        while t < t1 {
            if !awake && wake_at <= t {
                let now = region.now();
                region.skip(t - now);
                awake = true;
            }
            if awake {
                region.emit();
                if !fused {
                    while let Some((b, word, credits)) =
                        region.shard_noc_mut().take_dirty_boundary()
                    {
                        let ring = &rings[slice.my_wire[b]].0;
                        if let Some(w) = word {
                            ring.send_word(t, w);
                        }
                        if credits > 0 {
                            ring.send_credits(t, credits);
                        }
                    }
                }
            }
            // Publish cycle t on every outbound wire — also while asleep:
            // the watermark is the null message that lets consumers proceed.
            for &i in slice.out_list {
                rings[i].0.publish(t);
            }
            // Wait until every inbound wire is final for t.
            for &i in slice.in_list {
                rings[i].0.wait_published(t);
            }
            if !awake && slice.in_list.iter().any(|&i| rings[i].0.has_due(t)) {
                let now = region.now();
                region.skip(t - now);
                region.emit(); // no-op: region is quiescent
                awake = true;
            }
            if awake {
                if !fused {
                    for &i in slice.in_list {
                        if let Some((word, credits)) = rings[i].0.take_due(t) {
                            region.shard_noc_mut().put_boundary_in(
                                wires[i].dst_boundary,
                                word,
                                credits,
                            );
                        }
                    }
                }
                region.absorb();
            }
            t += 1;
        }
        // Epoch boundary: a purely local sleep decision — no re-alignment.
        if awake && region.quiescent() {
            let now = region.now();
            let horizon = region.next_event(now);
            if horizon > now {
                awake = false;
                wake_at = horizon;
            }
        }
    }
    let now = region.now();
    if now < end {
        region.skip(end - now);
    }
    (awake, wake_at)
}

/// The slack-batched shard driver with per-region activity tracking.
///
/// Every global cycle has the two engine phases, with the boundary
/// exchange between them:
///
/// 1. **emit** on every awake region (a sleeping region is quiescent by
///    definition, and a quiescent emit is a no-op — so skipping it is
///    exact);
/// 2. **exchange**: each region's boundary-dirty list is drained — only
///    wires that actually carried a word or credits this cycle cost any
///    work — and delivered to the destination shard for this cycle's
///    absorb; a sleeping destination is woken first (caught up with one
///    exact [`Clocked::skip`], its no-op emit run late);
/// 3. **absorb** on every awake region.
///
/// Activity-set maintenance is amortized over
/// [`batch`](ShardRunner::set_batch)-sized epochs: only at an epoch
/// boundary does the runner walk the awake regions' quiescence and
/// [`Clocked::next_event`] horizons and let drained regions leave the set.
/// Inside an epoch a quiescent region just keeps ticking (a no-op by the
/// quiescence contract), so the batch size trades scheduling overhead
/// against how promptly regions fall asleep — it never affects what the
/// simulation computes.
///
/// A region is never skipped past its own next-event horizon, and never
/// past a cycle in which input arrives for it — the two properties that
/// make per-region skipping exact. Input the runner cannot see (words
/// injected directly into a region's NI links between `run` calls) must be
/// announced with [`ShardRunner::wake`] first.
#[derive(Debug)]
pub struct ShardRunner {
    wires: Vec<BoundaryWire>,
    /// `dest[shard][boundary]` = the consuming `(shard, boundary)` of the
    /// wire fed by that outbound boundary.
    dest: Vec<Vec<(usize, usize)>>,
    /// The shared exchange arena: one ring per wire, indexed like `wires`.
    arena: std::sync::Arc<BoundaryArena>,
    /// `out_w[shard]` = wire indices the shard produces onto.
    out_w: Vec<Vec<usize>>,
    /// `in_w[shard]` = wire indices the shard consumes from.
    in_w: Vec<Vec<usize>>,
    /// `wire_of[shard][boundary]` = outbound wire index of that boundary.
    wire_of: Vec<Vec<usize>>,
    /// `in_wire_of[shard][boundary]` = inbound wire index of that boundary.
    in_wire_of: Vec<Vec<usize>>,
    batch: u64,
    cycle: u64,
    awake: Vec<bool>,
    wake_at: Vec<u64>,
    /// Next cycle at which a declined region fast-forward may be retried
    /// (declines scan the region's state; see [`crate::ff::FF_COOLDOWN`]).
    ff_cooldown_until: u64,
}

impl ShardRunner {
    /// Creates a runner for `regions` regions starting at `start_cycle`
    /// (the cycle the regions were split at), with the given cross-shard
    /// wires and a batch size of 1 (scheduling decisions every cycle — see
    /// [`ShardRunner::set_batch`]).
    pub fn new(regions: usize, wires: Vec<BoundaryWire>, start_cycle: u64) -> Self {
        let mut dest: Vec<Vec<(usize, usize)>> = vec![Vec::new(); regions];
        let mut out_w: Vec<Vec<usize>> = vec![Vec::new(); regions];
        let mut in_w: Vec<Vec<usize>> = vec![Vec::new(); regions];
        let mut wire_of: Vec<Vec<usize>> = vec![Vec::new(); regions];
        let mut in_wire_of: Vec<Vec<usize>> = vec![Vec::new(); regions];
        for (i, w) in wires.iter().enumerate() {
            assert!(
                w.src_shard < regions && w.dst_shard < regions,
                "wire out of range"
            );
            assert_ne!(w.src_shard, w.dst_shard, "wire must cross shards");
            if dest[w.src_shard].len() <= w.src_boundary {
                dest[w.src_shard].resize(w.src_boundary + 1, (usize::MAX, usize::MAX));
            }
            dest[w.src_shard][w.src_boundary] = (w.dst_shard, w.dst_boundary);
            out_w[w.src_shard].push(i);
            in_w[w.dst_shard].push(i);
            if wire_of[w.src_shard].len() <= w.src_boundary {
                wire_of[w.src_shard].resize(w.src_boundary + 1, usize::MAX);
            }
            wire_of[w.src_shard][w.src_boundary] = i;
            if in_wire_of[w.dst_shard].len() <= w.dst_boundary {
                in_wire_of[w.dst_shard].resize(w.dst_boundary + 1, usize::MAX);
            }
            in_wire_of[w.dst_shard][w.dst_boundary] = i;
        }
        let arena = std::sync::Arc::new(BoundaryArena::new(wires.len(), start_cycle));
        ShardRunner {
            wires,
            dest,
            arena,
            out_w,
            in_w,
            wire_of,
            in_wire_of,
            batch: 1,
            cycle: start_cycle,
            awake: vec![true; regions],
            wake_at: vec![0; regions],
            ff_cooldown_until: 0,
        }
    }

    /// Installs the runner's exchange arena into every region's network
    /// (see [`crate::Noc::attach_exchange`]): from here on the regions'
    /// emit/absorb phases read and write the cut-wire rings **in place**,
    /// and the runner's per-event dirty-list bridge goes quiet — for the
    /// sequential and the worker-thread runner alike. Call once, right
    /// after splitting, and on **all** regions or none: a fused producer
    /// writes rings only a fused consumer reads.
    ///
    /// # Panics
    ///
    /// Panics if `regions` does not match the runner's region count, or if
    /// a region's boundary count disagrees with the wire table.
    pub fn fuse<R: ShardRegion>(&self, regions: &mut [R]) {
        assert_eq!(regions.len(), self.awake.len(), "region count mismatch");
        for (s, region) in regions.iter_mut().enumerate() {
            region
                .shard_noc_mut()
                .attach_exchange(ExchangeAttachment::new(
                    self.arena.clone(),
                    self.wire_of[s].clone(),
                    self.in_wire_of[s].clone(),
                ));
        }
    }

    /// The shared exchange arena (one ring per cross-shard wire).
    pub fn arena(&self) -> &std::sync::Arc<BoundaryArena> {
        &self.arena
    }

    /// Sets the batch size `B ≥ 1` and returns `self` (builder form).
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.set_batch(batch);
        self
    }

    /// Sets the batch size: how many cycles run between scheduling epochs.
    /// A pure performance knob — execution is bit-identical for every
    /// `B ≥ 1` (see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn set_batch(&mut self, batch: u64) {
        assert!(batch >= 1, "batch size must be ≥ 1");
        self.batch = batch;
    }

    /// The configured batch size.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The global cycle (regions lag only while asleep; `run` returns with
    /// every region caught up to this).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Regions currently in the activity set.
    pub fn awake_count(&self) -> usize {
        self.awake.iter().filter(|&&a| a).count()
    }

    /// Ensures region `r` is awake and caught up to the runner's cycle.
    ///
    /// Required before injecting words **directly** into the region's NI
    /// links between `run` calls: such input bypasses the activity
    /// scheduler, which otherwise only wakes regions for boundary traffic
    /// and their own reported horizons. Redundant (and free) for awake
    /// regions.
    pub fn wake<R: ShardRegion>(&mut self, regions: &mut [R], r: usize) {
        if self.awake[r] {
            return;
        }
        // Cooperate with in-flight arena traffic: a cut word already
        // sitting in one of the region's inbound rings is due at an exact
        // cycle, and a blind skip past it would violate the
        // never-absorb-off-schedule property. Catch up like a one-region
        // engine instead: while quiescent, skip only to the nearest of the
        // region's own event horizon and the earliest due cut word; run
        // every other cycle for real (emit, then absorb — which consumes
        // due ring slots at exactly their stamps).
        loop {
            let now = regions[r].now();
            if now >= self.cycle {
                break;
            }
            if regions[r].quiescent() {
                let due = self.in_w[r]
                    .iter()
                    .filter_map(|&i| self.arena.ring(i).next_due(now))
                    .min()
                    .unwrap_or(u64::MAX);
                let horizon = regions[r].next_event(now).min(due).min(self.cycle);
                if horizon > now {
                    regions[r].skip(horizon - now);
                    continue;
                }
            }
            regions[r].emit();
            regions[r].absorb();
        }
        self.awake[r] = true;
    }

    /// Wakes region `r` mid-cycle `t` for inbound boundary traffic: catch
    /// up with one exact skip, run the (no-op) emit so the region's phase
    /// order holds, and put it back in the activity set.
    fn wake_for_input<R: ShardRegion>(awake: &mut [bool], region: &mut R, r: usize, t: u64) {
        let now = region.now();
        region.skip(t - now);
        region.emit();
        awake[r] = true;
    }

    /// Runs `cycles` global cycles on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `regions` does not match the runner's region count.
    pub fn run<R: ShardRegion>(&mut self, regions: &mut [R], cycles: u64) {
        assert_eq!(regions.len(), self.awake.len(), "region count mismatch");
        let end = self.cycle + cycles;
        while self.cycle < end {
            let t0 = self.cycle;
            // Wake regions whose spontaneous-event horizon arrived.
            for (r, region) in regions.iter_mut().enumerate() {
                if !self.awake[r] && self.wake_at[r] <= t0 {
                    let now = region.now();
                    region.skip(t0 - now);
                    self.awake[r] = true;
                }
            }
            // Everyone asleep: jump straight to the earliest horizon.
            if self.awake.iter().all(|&a| !a) {
                let next = self.wake_at.iter().copied().min().unwrap_or(end);
                self.cycle = next.clamp(t0 + 1, end);
                continue;
            }
            // Sole-awake fast-forward: with exactly one region in the
            // activity set, nothing can reach it before the earliest
            // sleeper horizon (sleepers are quiescent — their first
            // possible action is their own wake) — so the whole gap is
            // offered to the region's analytical fast-forward backend.
            // A decline is rate-limited; a partial advance (probe ticks
            // without a certified jump) still moves global time.
            if self.awake.iter().filter(|&&a| a).count() == 1 && t0 >= self.ff_cooldown_until {
                let r = self.awake.iter().position(|&a| a).expect("one awake");
                let gap_end = self
                    .wake_at
                    .iter()
                    .enumerate()
                    .filter(|&(s, _)| !self.awake[s])
                    .map(|(_, &w)| w)
                    .min()
                    .unwrap_or(end)
                    .min(end);
                if gap_end > t0 {
                    let out = regions[r].fast_forward_region(gap_end - t0);
                    if out.jumped == 0 {
                        self.ff_cooldown_until = t0 + out.advanced.max(1) * 4;
                        self.ff_cooldown_until =
                            self.ff_cooldown_until.max(t0 + crate::ff::FF_COOLDOWN);
                    }
                    if out.advanced > 0 {
                        self.cycle = t0 + out.advanced;
                        continue;
                    }
                }
            }
            // One epoch: up to `batch` cycles of emit → exchange → absorb,
            // with scheduling work deferred to the epoch boundary.
            let t1 = end.min(t0 + self.batch);
            for t in t0..t1 {
                if t > t0 {
                    for (r, region) in regions.iter_mut().enumerate() {
                        if !self.awake[r] && self.wake_at[r] <= t {
                            let now = region.now();
                            region.skip(t - now);
                            self.awake[r] = true;
                        }
                    }
                }
                // Phase 1: emit.
                for (r, region) in regions.iter_mut().enumerate() {
                    if self.awake[r] {
                        region.emit();
                    }
                }
                // Exchange: fused regions already emitted straight into
                // the arena rings — only sleeping destinations need a
                // wake scan over the wires that actually carry traffic
                // this cycle. Unfused regions are bridged through their
                // dirty lists, word by word. Quiet wires are never
                // visited in either path.
                for s in 0..regions.len() {
                    while let Some((b, word, credits)) =
                        regions[s].shard_noc_mut().take_dirty_boundary()
                    {
                        debug_assert!(word.is_some() || credits > 0);
                        let (ds, db) = self.dest[s][b];
                        if !self.awake[ds] {
                            Self::wake_for_input(&mut self.awake, &mut regions[ds], ds, t);
                        }
                        regions[ds]
                            .shard_noc_mut()
                            .put_boundary_in(db, word, credits);
                    }
                    for &i in &self.out_w[s] {
                        let ds = self.wires[i].dst_shard;
                        if !self.awake[ds] && self.arena.ring(i).has_due(t) {
                            Self::wake_for_input(&mut self.awake, &mut regions[ds], ds, t);
                        }
                    }
                }
                // Phase 2: absorb.
                for (r, region) in regions.iter_mut().enumerate() {
                    if self.awake[r] {
                        region.absorb();
                    }
                }
            }
            self.cycle = t1;
            // Epoch boundary: let drained regions leave the activity set.
            for (r, region) in regions.iter_mut().enumerate() {
                if self.awake[r] && region.quiescent() {
                    let now = region.now();
                    let horizon = region.next_event(now);
                    if horizon > now {
                        self.awake[r] = false;
                        self.wake_at[r] = horizon;
                    }
                }
            }
        }
        // Catch every sleeper up to the end of the span (never past its
        // horizon: a sleeper's horizon is ≥ end, else it would have woken).
        for region in regions.iter_mut() {
            let now = region.now();
            if now < end {
                region.skip(end - now);
            }
        }
    }

    /// Runs `cycles` global cycles with one worker thread per region.
    /// Bit-identical to [`Self::run`].
    ///
    /// Cross-shard traffic flows through the arena's [`WireRing`]s, one
    /// per wire, each carrying the producer's published-cycle watermark: a
    /// worker absorbs cycle `t` as soon as every inbound wire's producer
    /// has published past `t` — a per-wire acquire load, spin-then-yield
    /// only when the consumer actually outruns a producer. There is **no
    /// epoch barrier**: workers pipeline freely into the next epoch while
    /// peers still drain the last one, bounded only by the wire-adjacency
    /// skew the watermarks themselves enforce (see the module docs).
    ///
    /// The worker protocol never offers
    /// [`fast_forward_region`](ShardRegion::fast_forward_region): its
    /// sole-awake precondition is a global property the decoupled workers
    /// cannot observe cheaply. A workload periodic enough to fast-forward
    /// is single-region-active by definition — run it through
    /// [`ShardRunner::run`], where the offer is made.
    ///
    /// # Panics
    ///
    /// Panics if `regions` does not match the runner's region count.
    pub fn run_parallel<R: ShardRegion>(&mut self, regions: &mut [R], cycles: u64) {
        assert_eq!(regions.len(), self.awake.len(), "region count mismatch");
        let n = regions.len();
        if n <= 1 || cycles == 0 {
            return self.run(regions, cycles);
        }
        let start = self.cycle;
        let end = start + cycles;
        // Watermarks are meaningless between spans (the sequential runner
        // never advances them); slots carry over untouched — in-flight
        // traffic stays in-flight across the mode switch.
        self.arena.rebase(start);
        let batch = self.batch;
        let states: Vec<(bool, u64)> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(n);
                for (r, region) in regions.iter_mut().enumerate() {
                    let slice = ExchangeSlice {
                        rings: self.arena.rings(),
                        wires: &self.wires,
                        out_list: &self.out_w[r],
                        in_list: &self.in_w[r],
                        my_wire: &self.wire_of[r],
                    };
                    let awake = self.awake[r];
                    let wake_at = self.wake_at[r];
                    handles.push(scope.spawn(move || {
                        run_worker(region, &slice, start, end, batch, awake, wake_at)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
        for (r, (awake, wake_at)) in states.into_iter().enumerate() {
            self.awake[r] = awake;
            self.wake_at[r] = wake_at;
        }
        self.cycle = end;
    }
}

impl crate::persist::Persist for ShardRunner {
    /// One audited walk over the runner's dynamic state: the global
    /// cycle, the batch size, then every arena ring's unconsumed slots
    /// (see [`WireRing::persist_slots`]).
    ///
    /// Two pieces of ring state are **re-derived** from the restored
    /// cycle rather than carried in the snapshot, because both are
    /// functions of global time, not of history: each ring's published
    /// watermark is rebased to the restored cycle (a stale watermark
    /// would let a parallel consumer absorb cycles the restored producer
    /// has not re-emitted), and each slot's home index is recomputed as
    /// `due & (RING_SLOTS - 1)` inside [`WireRing::restore_slot`] (a
    /// positional copy would strand mid-epoch traffic in the wrong slot
    /// and trip the due-cycle assertions).
    ///
    /// The scheduler bookkeeping — activity-set membership, wake
    /// horizons, the fast-forward retry rate-limiter — is **reset**, not
    /// carried: sleep decisions happen at epoch boundaries and offer
    /// windows are clipped at each `run()` call's end, so two
    /// bit-identical executions interrupted at different points
    /// legitimately disagree on all three (pinned by the batched parity
    /// tests). Regions are always caught up to the global cycle between
    /// runs, so waking everyone is exact — quiescent regions re-sleep at
    /// the next epoch boundary. The same class as a FIFO's visibility
    /// cache.
    fn persist(&mut self, p: &mut dyn crate::persist::PersistVisit) {
        p.item(&mut self.cycle);
        p.item(&mut self.batch);
        for r in self.arena.rings() {
            r.0.persist_slots(p);
        }
        self.awake.fill(true);
        self.wake_at.fill(0);
        self.ff_cooldown_until = 0;
        self.arena.rebase(self.cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::header::PacketHeader;
    use crate::path::Path;
    use crate::rng::Rng64;
    use crate::word::{LinkWord, WordClass, SLOT_WORDS};

    // ---- Partition ----------------------------------------------------

    #[test]
    fn partition_requires_dense_shards() {
        assert!(Partition::new(vec![0, 2]).is_err());
        assert!(Partition::new(Vec::new()).is_err());
        let p = Partition::new(vec![1, 0, 1]).unwrap();
        assert_eq!(p.shards(), 2);
    }

    #[test]
    fn mesh_rows_cut_only_vertical_links() {
        let topo = Topology::mesh(4, 4, 1);
        let p = Partition::mesh_rows(4, 4, 2);
        assert_eq!(p.shards(), 2);
        for c in p.cut_edges(&topo) {
            let e = topo.edges()[c.edge];
            // A vertical mesh edge connects routers one row apart.
            assert_eq!(e.b - e.a, 4, "cut must be a north/south link");
        }
        assert_eq!(p.cut_edges(&topo).len(), 4, "one cut per column");
    }

    #[test]
    fn partition_validates_length() {
        let topo = Topology::mesh(2, 2, 1);
        let p = Partition::new(vec![0, 1]).unwrap();
        assert!(matches!(
            p.validate(&topo),
            Err(PartitionError::WrongLength { got: 2, want: 4 })
        ));
    }

    #[test]
    fn pieces_preserve_ports_and_order() {
        let topo = Topology::mesh(2, 2, 2);
        let p = Partition::mesh_rows(2, 2, 2);
        let pieces = p.pieces(&topo);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].routers, vec![0, 1]);
        assert_eq!(pieces[1].routers, vec![2, 3]);
        assert_eq!(pieces[0].nis, vec![0, 1, 2, 3]);
        assert_eq!(pieces[1].nis, vec![4, 5, 6, 7]);
        // Port counts survive the cut (headers address ports by index).
        for piece in &pieces {
            for (lr, &gr) in piece.routers.iter().enumerate() {
                assert_eq!(piece.topology.ports_of(lr), topo.ports_of(gr));
            }
        }
    }

    // ---- Noc-level split parity --------------------------------------

    fn be_packet(path: Path, qid: u8, payload: &[u32]) -> Vec<LinkWord> {
        let h = PacketHeader {
            path,
            qid,
            credits: 0,
            flush: false,
        };
        let mut words = vec![LinkWord::header(h.pack(), WordClass::BestEffort)];
        for (i, &w) in payload.iter().enumerate() {
            words.push(LinkWord::payload(
                w,
                WordClass::BestEffort,
                i + 1 == payload.len(),
            ));
        }
        words
    }

    fn gt_packet(path: Path, qid: u8, payload: &[u32]) -> Vec<LinkWord> {
        let h = PacketHeader {
            path,
            qid,
            credits: 0,
            flush: false,
        };
        let mut words = vec![LinkWord::header(h.pack(), WordClass::Guaranteed)];
        for (i, &w) in payload.iter().enumerate() {
            words.push(LinkWord::payload(
                w,
                WordClass::Guaranteed,
                i + 1 == payload.len(),
            ));
        }
        words
    }

    /// A split 2x2 mesh: shard 0 owns the top row, shard 1 the bottom.
    /// Regions come fused onto the runner's exchange arena (the production
    /// configuration).
    fn split_2x2() -> (Topology, Noc, Vec<NocShard>, ShardRunner) {
        let topo = Topology::mesh(2, 2, 1);
        let single = Noc::new(&topo);
        let partition = Partition::mesh_rows(2, 2, 2);
        let mut shards = single.clone().split(&topo, &partition);
        let wires = wires_of(&shards);
        let runner = ShardRunner::new(shards.len(), wires, 0);
        runner.fuse(&mut shards);
        (topo, single, shards, runner)
    }

    fn merged(shards: &[NocShard]) -> NocStats {
        merge_noc_stats(
            shards
                .iter()
                .map(|s| (&s.noc, &s.link_map[..], &s.boundary_links[..])),
        )
    }

    /// Global NI id → (shard, local NI id).
    fn locate(shards: &[NocShard], ni: NiId) -> (usize, usize) {
        for (s, sh) in shards.iter().enumerate() {
            if let Some(l) = sh.nis.iter().position(|&g| g == ni) {
                return (s, l);
            }
        }
        panic!("NI {ni} not found");
    }

    #[test]
    fn split_covers_every_link_exactly_once() {
        let (topo, single, shards, _) = split_2x2();
        let total = single.links().len();
        let mut seen = vec![0usize; total];
        for sh in &shards {
            for &g in sh.link_map.iter().chain(&sh.boundary_links) {
                seen[g] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
        assert_eq!(topo.edges().len() * 2 + topo.ni_count() * 2, total);
    }

    /// Drives the same word schedule into the unsplit network and the
    /// sharded pair, comparing deliveries and merged statistics each cycle.
    fn assert_parity(schedule: &[(u64, NiId, LinkWord)], horizon: u64, drain: NiId) {
        let (_, mut single, mut shards, mut runner) = split_2x2();
        let (ds, dl) = locate(&shards, drain);
        let mut got_single = Vec::new();
        let mut got_sharded = Vec::new();
        for t in 0..horizon {
            for &(at, ni, w) in schedule {
                if at == t {
                    single.ni_link_mut(ni).send(w);
                    let (s, l) = locate(&shards, ni);
                    // Direct NI-link injection bypasses the activity
                    // scheduler: announce it.
                    runner.wake(&mut shards, s);
                    shards[s].noc.ni_link_mut(l).send(w);
                }
            }
            single.tick();
            runner.run(&mut shards, 1);
            while let Some(w) = single.ni_link_mut(drain).recv() {
                got_single.push((t, w));
            }
            while let Some(w) = shards[ds].noc.ni_link_mut(dl).recv() {
                got_sharded.push((t, w));
            }
        }
        assert_eq!(got_single, got_sharded, "delivery trace differs");
        assert_eq!(*single.stats(), merged(&shards), "statistics differ");
    }

    #[test]
    fn be_worm_across_the_cut_is_bit_identical() {
        let topo = Topology::mesh(2, 2, 1);
        let path = topo.route(0, 3).unwrap(); // E, S, eject: crosses the cut
        let words = be_packet(path, 5, &[10, 20, 30, 40]);
        let schedule: Vec<_> = words
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u64, 0, w))
            .collect();
        assert_parity(&schedule, 40, 3);
    }

    #[test]
    fn gt_slot_alignment_survives_the_cut() {
        let topo = Topology::mesh(2, 2, 1);
        let path = topo.route(0, 3).unwrap();
        let words = gt_packet(path, 1, &[100, 200]);
        let schedule: Vec<_> = words
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u64, 0, w))
            .collect();
        assert_parity(&schedule, 11 + SLOT_WORDS * 3, 3);
    }

    #[test]
    fn contending_worms_and_boundary_credits_are_bit_identical() {
        // Two senders saturate NI 3 from both sides of the cut: router
        // arbitration, wormhole blocking and the boundary credit return all
        // engage.
        let topo = Topology::mesh(2, 2, 1);
        let p03 = topo.route(0, 3).unwrap();
        let p23 = topo.route(2, 3).unwrap();
        let mut schedule = Vec::new();
        for round in 0..6u64 {
            for (i, &w) in be_packet(p03.clone(), 0, &[1, 2, 3, 4, 5])
                .iter()
                .enumerate()
            {
                schedule.push((round * 6 + i as u64, 0, w));
            }
            for (i, &w) in be_packet(p23.clone(), 1, &[6, 7, 8]).iter().enumerate() {
                schedule.push((round * 6 + i as u64, 2, w));
            }
        }
        assert_parity(&schedule, 140, 3);
    }

    #[test]
    fn randomized_traffic_parity() {
        // Seeded random single-word packets from every NI to every other,
        // random cycles: the strongest Noc-level bit-identity check.
        let topo = Topology::mesh(2, 2, 1);
        let mut rng = Rng64::seed_from_u64(0xA37E);
        let mut schedule = Vec::new();
        let mut busy_until = [0u64; 4];
        for _ in 0..60 {
            let src = rng.below(4) as usize;
            let dst = ((src as u64 + 1 + rng.below(3)) % 4) as usize;
            let at = busy_until[src] + rng.below(4);
            let path = topo.route(src, dst).unwrap();
            let words = be_packet(path, dst as u8, &[rng.below(1 << 20) as u32]);
            for (i, &w) in words.iter().enumerate() {
                schedule.push((at + i as u64, src, w));
            }
            busy_until[src] = at + words.len() as u64;
        }
        // Only NI 3 is drained; the others keep their inboxes — still part
        // of the compared state via delivered counts and link tallies.
        assert_parity(&schedule, 400, 3);
    }

    #[test]
    fn parallel_runner_matches_sequential() {
        let topo = Topology::mesh(2, 2, 1);
        let single = Noc::new(&topo);
        let partition = Partition::mesh_rows(2, 2, 2);
        let mut seq = single.clone().split(&topo, &partition);
        let mut par = single.split(&topo, &partition);
        let path = topo.route(0, 3).unwrap();
        let words = be_packet(path, 2, &[7, 8, 9]);
        for (shards, parallel) in [(&mut seq, false), (&mut par, true)] {
            let wires = wires_of(shards);
            let mut runner = ShardRunner::new(shards.len(), wires, 0);
            runner.fuse(shards);
            for &w in &words {
                let (s, l) = locate(shards, 0);
                runner.wake(shards, s);
                shards[s].noc.ni_link_mut(l).send(w);
                if parallel {
                    runner.run_parallel(shards, 1);
                } else {
                    runner.run(shards, 1);
                }
            }
            if parallel {
                runner.run_parallel(shards, 60);
            } else {
                runner.run(shards, 60);
            }
        }
        assert_eq!(merged(&seq), merged(&par));
        let (s, l) = locate(&seq, 3);
        let mut a = Vec::new();
        while let Some(w) = seq[s].noc.ni_link_mut(l).recv() {
            a.push(w);
        }
        let mut b = Vec::new();
        while let Some(w) = par[s].noc.ni_link_mut(l).recv() {
            b.push(w);
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn wake_replays_in_flight_cut_words_at_exact_cycles() {
        // Mid-overlap wake: a producer shard has run ahead and left cut
        // words in the arena rings while the consumer shard sleeps behind
        // the runner's cycle. `wake` must not blind-skip the consumer past
        // the due cycles — it has to absorb each in-flight word at exactly
        // its stamp, then tick (not skip) once it holds live state.
        let (topo, mut single, mut shards, mut runner) = split_2x2();
        let path = topo.route(0, 2).unwrap(); // S then eject: crosses the cut
        let words = gt_packet(path, 2, &[11, 22]);
        let (ps, pl) = locate(&shards, 0);
        assert_eq!(ps, 0, "producer NI lives in shard 0");
        // Drive the producer shard alone, as a pipelined worker would:
        // shard 0 runs ahead to cycle K while shard 1 never ticks.
        const K: u64 = 12;
        for t in 0..K {
            for (i, &w) in words.iter().enumerate() {
                if i as u64 == t {
                    single.ni_link_mut(0).send(w);
                    shards[0].noc.ni_link_mut(pl).send(w);
                }
            }
            single.tick();
            shards[0].noc.tick();
        }
        // Forge the runner's mid-overlap view: global time is K, shard 1
        // asleep at cycle 0 with no horizon of its own.
        runner.cycle = K;
        runner.awake = vec![true, false];
        runner.wake_at = vec![0, u64::MAX];
        let in_flight: usize = runner
            .wires
            .iter()
            .enumerate()
            .filter(|(_, w)| w.dst_shard == 1)
            .map(|(i, _)| runner.arena.ring(i).occupied())
            .sum();
        assert!(in_flight > 0, "cut words are in flight toward shard 1");
        runner.wake(&mut shards, 1);
        assert_eq!(shards[1].noc.cycle(), K, "woken region caught up");
        assert!(
            runner.arena.is_empty() || shards[1].noc.boundaries_silent(),
            "every in-flight word was consumed"
        );
        // The replayed words arrive bit-identically to the monolithic run.
        single.run(60);
        runner.run(&mut shards, 60);
        let (ds, dl) = locate(&shards, 2);
        let a: Vec<_> = std::iter::from_fn(|| single.ni_link_mut(2).recv()).collect();
        let b: Vec<_> = std::iter::from_fn(|| shards[ds].noc.ni_link_mut(dl).recv()).collect();
        assert_eq!(a, b, "delivery differs after the cooperative wake");
        assert_eq!(a.len(), words.len(), "whole worm delivered");
        assert_eq!(*single.stats(), merged(&shards), "statistics differ");
    }

    // ---- Arena wire rings --------------------------------------------

    #[test]
    fn ring_delivers_at_exact_due_cycles() {
        let ring: WireRing = WireRing::new(0);
        let w = LinkWord::header_only(7, WordClass::BestEffort);
        ring.send_word(2, w);
        ring.send_credits(3, 2);
        assert!(!ring.is_silent());
        assert_eq!(ring.occupied(), 2);
        // Early cycles: nothing, and the slots stay occupied.
        assert_eq!(ring.take_due(0), None);
        assert_eq!(ring.take_due(1), None);
        assert!(ring.has_due(2));
        assert!(!ring.has_due(1));
        assert_eq!(ring.take_due(2), Some((Some(w), 0)));
        assert_eq!(ring.take_due(3), Some((None, 2)));
        assert!(ring.is_silent());
        assert_eq!(ring.take_due(4), None);
    }

    #[test]
    fn ring_accumulates_credits_in_place() {
        let ring: WireRing = WireRing::new(0);
        ring.send_credits(2, 1);
        ring.send_credits(2, 1);
        ring.send_credits(2, 3);
        let w = LinkWord::header_only(9, WordClass::Guaranteed);
        ring.send_word(2, w);
        assert_eq!(ring.take_due(2), Some((Some(w), 5)));
        assert!(ring.is_silent());
    }

    #[test]
    #[should_panic(expected = "missed")]
    fn ring_panics_on_missed_due_cycle() {
        let ring: WireRing = WireRing::new(0);
        ring.send_word(3, LinkWord::header_only(7, WordClass::BestEffort));
        let _ = ring.take_due(7); // cycle 3 was skipped (same slot, later t)
    }

    #[test]
    #[should_panic(expected = "overrun")]
    fn ring_panics_on_slot_overrun() {
        let ring: WireRing = WireRing::new(0);
        ring.send_credits(1, 1);
        // RING_SLOTS cycles later the slot recurs while still unconsumed —
        // only reachable if the watermark discipline were broken.
        ring.send_credits(1 + RING_SLOTS as u64, 1);
    }

    #[test]
    fn ring_next_due_scans_all_slots() {
        let ring: WireRing = WireRing::new(0);
        assert_eq!(ring.next_due(0), None);
        ring.send_credits(5, 1);
        ring.send_credits(6, 1);
        assert_eq!(ring.next_due(0), Some(5));
        assert_eq!(ring.next_due(6), Some(6));
        assert_eq!(ring.next_due(7), None);
    }

    #[test]
    fn ring_watermark_publish_and_rebase() {
        let ring: WireRing = WireRing::new(10);
        ring.publish(10);
        ring.publish(11);
        ring.wait_published(11); // returns: 11 is final
        ring.rebase(20);
        ring.publish(20);
        ring.wait_published(20);
    }

    #[test]
    fn ring_persist_slots_round_trips_and_saving_is_a_noop() {
        use crate::persist::{StateLoader, StateSaver};
        let ring: WireRing = WireRing::new(0);
        let w = LinkWord::header_only(7, WordClass::BestEffort);
        ring.send_word(5, w);
        ring.send_credits(6, 3);

        let mut saver = StateSaver::new();
        ring.persist_slots(&mut saver);
        let items = saver.finish().unwrap();
        // Saving rewrote the same slots in place — the ring is unchanged.
        assert_eq!(ring.occupied(), 2);
        assert_eq!(ring.take_due(5), Some((Some(w), 0)));

        // Restore into a fresh ring: traffic re-homes at its due cycles.
        let fresh: WireRing = WireRing::new(0);
        let mut loader = StateLoader::new(items);
        fresh.persist_slots(&mut loader);
        loader.finish().unwrap();
        assert_eq!(fresh.occupied(), 2);
        assert_eq!(fresh.take_due(5), Some((Some(w), 0)));
        assert_eq!(fresh.take_due(6), Some((None, 3)));
        assert!(fresh.is_silent());
    }

    #[test]
    fn ring_restore_slot_rehomes_by_due_cycle_not_position() {
        // A slot due at a large cycle must land at `due & (RING_SLOTS-1)`,
        // not at index 0 — a positional restore would make `take_due` at
        // the due cycle miss it (slot(1337) != slot(0)).
        let ring: WireRing = WireRing::new(0);
        let w = LinkWord::header_only(9, WordClass::Guaranteed);
        assert!(ring.restore_slot(1337, w.pack_u64(), 2));
        assert!(ring.has_due(1337));
        assert!(!ring.has_due(1336));
        assert_eq!(ring.take_due(1337), Some((Some(w), 2)));
        assert!(ring.is_silent());
    }

    #[test]
    fn ring_restore_slot_rejects_home_index_aliasing() {
        let ring: WireRing = WireRing::new(0);
        assert!(ring.restore_slot(2, 0, 1));
        // Same home slot (2 and 2 + RING_SLOTS share an index): refused,
        // original occupant untouched.
        assert!(!ring.restore_slot(2 + RING_SLOTS as u64, 0, 9));
        assert_eq!(ring.take_due(2), Some((None, 1)));
    }

    #[test]
    fn ring_persist_rejects_oversized_and_aliasing_snapshots() {
        use crate::persist::StateLoader;
        // More slots than the ring holds.
        let mut items = vec![0u64; 1 + 3 * (RING_SLOTS + 1)];
        items[0] = (RING_SLOTS + 1) as u64;
        let ring: WireRing = WireRing::new(0);
        let mut loader = StateLoader::new(items);
        ring.persist_slots(&mut loader);
        assert!(loader.finish().is_err());
        // Two entries sharing a home index.
        let items = vec![2, 1, 0, 0, 1 + RING_SLOTS as u64, 0, 0];
        let ring: WireRing = WireRing::new(0);
        let mut loader = StateLoader::new(items);
        ring.persist_slots(&mut loader);
        assert!(loader.finish().is_err());
    }

    #[test]
    fn ring_never_surfaces_before_due_randomized() {
        // Property: a consumer sweeping every cycle right behind the
        // producer receives each entry at exactly its stamp.
        let mut rng = Rng64::seed_from_u64(0xD0E);
        for _ in 0..50 {
            let ring: WireRing = WireRing::new(0);
            let mut expected = Vec::new();
            let mut got = Vec::new();
            for t in 0..100u64 {
                if rng.below(3) == 0 {
                    let credits = 1 + rng.below(4) as u32;
                    ring.send_credits(t, credits);
                    expected.push((t, credits));
                }
                if let Some((word, credits)) = ring.take_due(t) {
                    assert!(word.is_none());
                    got.push((t, credits));
                }
            }
            assert_eq!(got, expected, "each entry surfaced at its stamp");
            assert!(ring.is_silent());
        }
    }

    // ---- Batched execution parity ------------------------------------

    /// The randomized BE schedule of `randomized_traffic_parity`.
    fn random_schedule(seed: u64) -> Vec<(u64, NiId, LinkWord)> {
        let topo = Topology::mesh(2, 2, 1);
        let mut rng = Rng64::seed_from_u64(seed);
        let mut schedule = Vec::new();
        let mut busy_until = [0u64; 4];
        for _ in 0..60 {
            let src = rng.below(4) as usize;
            let dst = ((src as u64 + 1 + rng.below(3)) % 4) as usize;
            let at = busy_until[src] + rng.below(4);
            let path = topo.route(src, dst).unwrap();
            let words = be_packet(path, dst as u8, &[rng.below(1 << 20) as u32]);
            for (i, &w) in words.iter().enumerate() {
                schedule.push((at + i as u64, src, w));
            }
            busy_until[src] = at + words.len() as u64;
        }
        schedule
    }

    /// Runs the schedule on a split 2x2 with the given batch size and
    /// execution mode, driving the runner in *chunks* (so epochs longer
    /// than one cycle actually engage), and returns the full drain trace
    /// of `drain` plus the merged statistics.
    fn batched_observation(
        schedule: &[(u64, NiId, LinkWord)],
        horizon: u64,
        drain: NiId,
        batch: u64,
        parallel: bool,
        fused: bool,
    ) -> (Vec<(u64, LinkWord)>, NocStats) {
        let topo = Topology::mesh(2, 2, 1);
        let single = Noc::new(&topo);
        let partition = Partition::mesh_rows(2, 2, 2);
        let mut shards = single.split(&topo, &partition);
        let wires = wires_of(&shards);
        let mut runner = ShardRunner::new(shards.len(), wires, 0).with_batch(batch);
        if fused {
            runner.fuse(&mut shards);
        }
        let (ds, dl) = locate(&shards, drain);
        let mut send_cycles: Vec<u64> = schedule.iter().map(|&(at, _, _)| at).collect();
        send_cycles.sort_unstable();
        send_cycles.dedup();
        let mut trace = Vec::new();
        let advance = |runner: &mut ShardRunner,
                       shards: &mut Vec<NocShard>,
                       trace: &mut Vec<(u64, LinkWord)>,
                       cycles: u64| {
            if parallel {
                runner.run_parallel(shards, cycles);
            } else {
                runner.run(shards, cycles);
            }
            let t = runner.cycle();
            while let Some(w) = shards[ds].noc.ni_link_mut(dl).recv() {
                trace.push((t, w));
            }
        };
        let mut t = 0;
        while t < horizon {
            // Jump in one chunk to the next send cycle (or the horizon).
            let next = send_cycles
                .iter()
                .copied()
                .find(|&c| c >= t)
                .unwrap_or(horizon)
                .min(horizon);
            if next > t {
                advance(&mut runner, &mut shards, &mut trace, next - t);
                t = next;
                continue;
            }
            for &(at, ni, w) in schedule {
                if at == t {
                    let (s, l) = locate(&shards, ni);
                    runner.wake(&mut shards, s);
                    shards[s].noc.ni_link_mut(l).send(w);
                }
            }
            advance(&mut runner, &mut shards, &mut trace, 1);
            t += 1;
        }
        (trace, merged(&shards))
    }

    #[test]
    fn batched_runs_are_bit_identical_for_all_batch_sizes() {
        // Randomized traffic; every batch size, both execution modes and
        // both exchange paths (arena-fused and dirty-list bridge) must
        // produce the identical drain trace and merged statistics. The
        // unfused B=1 sequential run is the reference: it is the original
        // lockstep semantics.
        for seed in [0xA37Eu64, 0xBEEF, 0x5EED5] {
            let schedule = random_schedule(seed);
            let reference = batched_observation(&schedule, 400, 3, 1, false, false);
            for fused in [false, true] {
                for batch in [2u64, 3, 7, 16] {
                    let seq = batched_observation(&schedule, 400, 3, batch, false, fused);
                    assert_eq!(
                        seq, reference,
                        "sequential batch {batch} (fused: {fused}) diverged"
                    );
                }
                for batch in [1u64, 7, 16] {
                    let par = batched_observation(&schedule, 400, 3, batch, true, fused);
                    assert_eq!(
                        par, reference,
                        "parallel batch {batch} (fused: {fused}) diverged"
                    );
                }
            }
        }
    }

    // ---- GT-calendar sleep -------------------------------------------

    #[test]
    fn calendar_only_regions_sleep_to_the_due_cycle() {
        // A GT worm crosses the cut; after the words leave the NI links,
        // the only pending state is router calendars — the regions must
        // report quiescence with the next due cycle as horizon instead of
        // ticking through the wait.
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        assert!(noc.drained());
        let path = topo.route(0, 3).unwrap();
        let h = PacketHeader {
            path,
            qid: 1,
            credits: 0,
            flush: false,
        };
        noc.ni_link_mut(0)
            .send(LinkWord::header_only(h.pack(), WordClass::Guaranteed));
        noc.tick();
        // The header sits in router 0's calendar, due one slot after its
        // cycle-0 absorb.
        assert!(!noc.drained(), "calendar entry pending");
        assert!(Clocked::quiescent(&noc), "calendar-only state is dormant");
        let due = noc.next_event(noc.now());
        assert_eq!(due, SLOT_WORDS, "due one slot after absorb");
        // The engine sleeps to the due cycle and the word still arrives on
        // schedule, bit-identical to per-cycle ticking.
        let mut by_tick = noc.clone();
        noc.run(40);
        for _ in 0..40 {
            by_tick.tick();
        }
        assert_eq!(noc.stats(), by_tick.stats());
        let a: Vec<_> = std::iter::from_fn(|| noc.ni_link_mut(3).recv()).collect();
        let b: Vec<_> = std::iter::from_fn(|| by_tick.ni_link_mut(3).recv()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert!(noc.drained(), "worm fully delivered");
    }

    #[test]
    fn shard_regions_sleep_on_calendar_horizons() {
        let (_, _, mut shards, mut runner) = split_2x2();
        let topo = Topology::mesh(2, 2, 1);
        let path = topo.route(0, 3).unwrap();
        let h = PacketHeader {
            path,
            qid: 1,
            credits: 0,
            flush: false,
        };
        let (s, l) = locate(&shards, 0);
        runner.wake(&mut shards, s);
        shards[s]
            .noc
            .ni_link_mut(l)
            .send(LinkWord::header_only(h.pack(), WordClass::Guaranteed));
        runner.run(&mut shards, 2);
        // The word is in shard 0's router calendar; with batch 1 the shard
        // falls asleep until the due cycle instead of staying awake.
        assert!(
            runner.awake_count() < 2,
            "calendar-only region left the activity set"
        );
        runner.run(&mut shards, 40);
        let (ds, dl) = locate(&shards, 3);
        let got: Vec<_> = std::iter::from_fn(|| shards[ds].noc.ni_link_mut(dl).recv()).collect();
        assert_eq!(got.len(), 1, "GT word crossed the cut on schedule");
        // With the destination inbox drained, the next epoch puts every
        // region to sleep.
        runner.run(&mut shards, 5);
        assert_eq!(runner.awake_count(), 0, "fully drained: all asleep");
    }

    #[test]
    fn idle_shards_leave_the_activity_set() {
        let (_, _, mut shards, mut runner) = split_2x2();
        runner.run(&mut shards, 10);
        assert_eq!(runner.awake_count(), 0, "an idle mesh fully sleeps");
        assert_eq!(runner.cycle(), 10);
        for s in &shards {
            assert_eq!(s.now(), 10, "sleepers are caught up at span end");
        }
    }

    #[test]
    fn single_shard_partition_degenerates_cleanly() {
        let topo = Topology::mesh(2, 2, 1);
        let single = Noc::new(&topo);
        let shards = single.clone().split(&topo, &Partition::single(4));
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].noc.boundary_count(), 0);
        assert!(wires_of(&shards).is_empty());
    }

    // ---- Activity-set property: never skip past the horizon ----------

    /// A scripted region: quiescent except at its event cycles, asserting
    /// on every skip that it is never advanced past its reported horizon.
    struct Probe {
        noc: Noc,
        cycle: u64,
        events: Vec<u64>,
        ticked_at: Vec<u64>,
    }

    impl Probe {
        fn new(events: Vec<u64>) -> Self {
            // A minimal one-router network; the probe's own state machine
            // carries the scripted activity.
            let topo = Topology::custom(vec![1], Vec::new(), Vec::new());
            Probe {
                noc: Noc::new(&topo),
                cycle: 0,
                events,
                ticked_at: Vec::new(),
            }
        }
    }

    impl Clocked for Probe {
        fn now(&self) -> u64 {
            self.cycle
        }

        fn emit(&mut self) {}

        fn absorb(&mut self) {
            self.ticked_at.push(self.cycle);
            self.cycle += 1;
        }

        fn quiescent(&self) -> bool {
            !self.events.contains(&self.cycle)
        }

        fn skip(&mut self, cycles: u64) {
            let target = self.cycle + cycles;
            let horizon = self.next_event(self.cycle);
            assert!(
                target <= horizon,
                "skipped from {} to {target}, past horizon {horizon}",
                self.cycle
            );
            self.cycle = target;
        }

        fn next_event(&self, now: u64) -> u64 {
            self.events
                .iter()
                .copied()
                .filter(|&e| e > now)
                .min()
                .unwrap_or(u64::MAX)
        }
    }

    impl ShardRegion for Probe {
        fn shard_noc(&self) -> &Noc {
            &self.noc
        }

        fn shard_noc_mut(&mut self) -> &mut Noc {
            &mut self.noc
        }
    }

    #[test]
    fn regions_never_skip_past_their_next_event_horizon() {
        // Randomized event schedules across several regions and spans; the
        // Probe asserts the horizon property inside every skip call.
        let mut rng = Rng64::seed_from_u64(0x5EED);
        for _ in 0..50 {
            let n = 1 + rng.below(4) as usize;
            let mut probes: Vec<Probe> = (0..n)
                .map(|_| {
                    let events = (0..rng.below(6)).map(|_| rng.below(200)).collect();
                    Probe::new(events)
                })
                .collect();
            let span = 50 + rng.below(200);
            let mut runner = ShardRunner::new(n, Vec::new(), 0);
            runner.run(&mut probes, span);
            for p in &probes {
                assert_eq!(p.now(), span, "caught up at span end");
                // Every scripted event within the span was actually ticked,
                // not skipped over.
                for &e in &p.events {
                    if e < span {
                        assert!(
                            p.ticked_at.contains(&e),
                            "event at {e} was skipped (ticks: {:?})",
                            p.ticked_at
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_run_on_a_region_still_works() {
        // The shard runner composes with the engine: a region is still a
        // Clocked fabric for Engine::run.
        let mut p = Probe::new(vec![5]);
        Engine::run(&mut p, 20);
        assert_eq!(p.now(), 20);
        assert!(p.ticked_at.contains(&5));
    }
}
