//! Deterministic, seedable fault injection.
//!
//! A [`FaultPlan`] is a schedule of fault events — link stuck/flaky windows,
//! router stalls, credit loss, slot-table bit corruption — that a [`Noc`]
//! arms via [`Noc::arm_faults`]. Armed faults hook the **emit** phase: after
//! each router produces its cycle's emissions, the active events filter (or
//! corrupt) the words and best-effort credit returns crossing the faulty
//! port, before they reach a wire, boundary register or exchange-arena ring.
//! Because the filter acts at the emission site — keyed by the router's
//! *global* id, which survives [`Noc::split`] — a fault on a cut wire
//! produces exactly the same word stream whether the network runs
//! monolithically or sharded: the arena ring simply never sees the dropped
//! word.
//!
//! Everything is deterministic. Probabilistic events ([`FaultKind::LinkFlaky`])
//! roll a per-event [`Rng64`] seeded from the plan seed and the event's plan
//! index, and the generator advances once per **word** crossing the faulty
//! port — never per cycle — so quiescent skips, batched shard epochs and
//! fast-forward-free replays all see the identical drop pattern. The dynamic
//! remainder (generator states, health counters, the next-activation cache)
//! rides the [`Persist`](crate::persist::Persist) walk, so a snapshot taken
//! mid-fault restores onto an identically-armed network and replays
//! bit-identically.
//!
//! Detection is surfaced through [`FaultReport`]: per-link health counters
//! (words dropped, words corrupted, credits lost — maintained by the
//! injection filter itself, standing in for the CRC/timeout machinery a
//! physical link would have) plus the routers' GT-violation watchdog
//! counters, which are genuine symptom counters independent of the plan.
//! The `aethereal-cfg` crate consumes the report: `Topology` link masks,
//! `RuntimeConfigurator::heal`, and re-certification live there.

use crate::path::PortIdx;
use crate::rng::Rng64;
use crate::router::EmitResult;
use crate::topology::RouterId;

/// Denominator of the [`FaultKind::LinkFlaky`] drop probability: a
/// `drop_ppm` of `1_000_000` drops every word.
pub const PPM_SCALE: u64 = 1_000_000;

/// What a scheduled fault does while its window is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The directed link leaving `(router, port)` is stuck: every word
    /// emitted through the port is dropped.
    LinkStuck,
    /// The directed link drops each word independently with probability
    /// `drop_ppm` / [`PPM_SCALE`], rolled on the event's own deterministic
    /// generator (advanced once per word, never per cycle).
    LinkFlaky {
        /// Per-word drop probability in parts per million (≥ `1_000_000`
        /// drops everything).
        drop_ppm: u32,
    },
    /// The whole router's output stage is stalled: every emission on every
    /// port is dropped for the window. The event's `port` is ignored.
    RouterStall,
    /// Link-level BE credit returns earned by dequeues at input `port` are
    /// swallowed (up to `max` in total), starving the upstream producer's
    /// credit window — the flow-control half of a degrading link.
    CreditLoss {
        /// Total credits the event may swallow across its window.
        max: u32,
    },
    /// Every word crossing the port has `xor` XOR-ed into its 32-bit data —
    /// the wire-visible effect of slot-table/payload bit corruption
    /// (control bits stay intact; a corrupted *header* misroutes or
    /// misaddresses downstream, which the NI surfaces as `rx_drops`).
    SlotCorrupt {
        /// Bit pattern XOR-ed into each word.
        xor: u32,
    },
}

/// One scheduled fault: a kind, a location and a half-open cycle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What happens.
    pub kind: FaultKind,
    /// Router whose emissions are affected (**global** id — stable across
    /// [`Noc::split`](crate::Noc::split)).
    pub router: RouterId,
    /// Output port ([`FaultKind::CreditLoss`]: input port; ignored for
    /// [`FaultKind::RouterStall`]).
    pub port: PortIdx,
    /// First faulty cycle (inclusive).
    pub from: u64,
    /// First healthy cycle again (exclusive end of the window).
    pub until: u64,
}

impl FaultEvent {
    /// Whether the window covers `cycle`.
    #[inline]
    pub fn active_at(&self, cycle: u64) -> bool {
        self.from <= cycle && cycle < self.until
    }
}

/// A deterministic, seedable schedule of fault events.
///
/// Build one with the fluent helpers and arm it on a network (or on every
/// shard of a sharded system) — identical plans with identical seeds yield
/// bit-identical fault timelines on every platform and shard layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan. Arming it injects nothing but still marks the network
    /// faulted (fast-forward declines; useful for measuring hook overhead).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Rebuilds a plan from its parts (the JSON decoder's entry point).
    pub fn from_parts(seed: u64, events: Vec<FaultEvent>) -> Self {
        FaultPlan { seed, events }
    }

    /// The seed all per-event generators derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in plan order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds a raw event.
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Schedules a stuck link: all words out of `(router, port)` dropped
    /// for cycles `[from, until)`.
    pub fn link_stuck(
        &mut self,
        router: RouterId,
        port: PortIdx,
        from: u64,
        until: u64,
    ) -> &mut Self {
        self.push(FaultEvent {
            kind: FaultKind::LinkStuck,
            router,
            port,
            from,
            until,
        })
    }

    /// Schedules a flaky link: each word out of `(router, port)` dropped
    /// with probability `drop_ppm` / [`PPM_SCALE`] for cycles `[from, until)`.
    pub fn link_flaky(
        &mut self,
        router: RouterId,
        port: PortIdx,
        from: u64,
        until: u64,
        drop_ppm: u32,
    ) -> &mut Self {
        self.push(FaultEvent {
            kind: FaultKind::LinkFlaky { drop_ppm },
            router,
            port,
            from,
            until,
        })
    }

    /// Schedules a router output stall: all emissions of `router` dropped
    /// for cycles `[from, until)`.
    pub fn router_stall(&mut self, router: RouterId, from: u64, until: u64) -> &mut Self {
        self.push(FaultEvent {
            kind: FaultKind::RouterStall,
            router,
            port: 0,
            from,
            until,
        })
    }

    /// Schedules credit loss: up to `max` BE credit returns earned at input
    /// `(router, port)` are swallowed during `[from, until)`.
    pub fn credit_loss(
        &mut self,
        router: RouterId,
        port: PortIdx,
        from: u64,
        until: u64,
        max: u32,
    ) -> &mut Self {
        self.push(FaultEvent {
            kind: FaultKind::CreditLoss { max },
            router,
            port,
            from,
            until,
        })
    }

    /// Schedules bit corruption: `xor` XOR-ed into every word crossing
    /// `(router, port)` during `[from, until)`.
    pub fn slot_corrupt(
        &mut self,
        router: RouterId,
        port: PortIdx,
        from: u64,
        until: u64,
        xor: u32,
    ) -> &mut Self {
        self.push(FaultEvent {
            kind: FaultKind::SlotCorrupt { xor },
            router,
            port,
            from,
            until,
        })
    }
}

/// One armed event: the scheduled [`FaultEvent`] plus its dynamic state —
/// the per-event generator and the health counters the injection filter
/// maintains. The event and plan index are structural (they come from the
/// armed plan); the generator and counters ride the `Persist` walk.
#[derive(Debug, Clone)]
struct ArmedFault {
    event: FaultEvent,
    /// Position in the original plan: seeds the generator and keys the
    /// report entry, stable across shard distribution.
    index: usize,
    rng: Rng64,
    dropped_words: u64,
    corrupted_words: u64,
    lost_credits: u64,
}

impl ArmedFault {
    fn arm(plan_seed: u64, index: usize, event: FaultEvent) -> Self {
        // An injective per-event seed derivation (golden-ratio stride, the
        // SplitMix64 increment) keeps sibling event streams decorrelated.
        let seed = plan_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ArmedFault {
            event,
            index,
            rng: Rng64::seed_from_u64(seed),
            dropped_words: 0,
            corrupted_words: 0,
            lost_credits: 0,
        }
    }

    /// Whether the event has affected any traffic yet.
    fn touched(&self) -> bool {
        self.dropped_words > 0 || self.corrupted_words > 0 || self.lost_credits > 0
    }
}

/// The armed fault machinery a [`Noc`] carries: the plan's events with
/// their dynamic state, plus a next-activation cache that keeps the
/// armed-but-idle emit path to a single comparison per cycle.
///
/// [`Noc`]: crate::Noc
#[derive(Debug, Clone)]
pub struct FaultState {
    events: Vec<ArmedFault>,
    /// Earliest upcoming cycle at which any event window is open; `0`
    /// forces the first [`FaultState::begin_cycle`] to compute it.
    next_active: u64,
}

impl FaultState {
    /// Arms every event of `plan`.
    pub fn arm(plan: &FaultPlan) -> Self {
        Self::arm_filtered(plan, |_| true)
    }

    /// Arms only the events whose router is in the **sorted** `owned` list —
    /// the shard-distribution entry point. Original plan indices (and thus
    /// generator seeds and report keys) are preserved.
    pub fn arm_for(plan: &FaultPlan, owned: &[RouterId]) -> Self {
        Self::arm_filtered(plan, |r| owned.binary_search(&r).is_ok())
    }

    fn arm_filtered(plan: &FaultPlan, keep: impl Fn(RouterId) -> bool) -> Self {
        FaultState {
            events: plan
                .events
                .iter()
                .enumerate()
                .filter(|(_, e)| keep(e.router))
                .map(|(i, e)| ArmedFault::arm(plan.seed, i, *e))
                .collect(),
            next_active: 0,
        }
    }

    /// Splits off the events owned by the **sorted** router list, moving
    /// their dynamic state (generator position, counters) unchanged — the
    /// [`Noc::split`](crate::Noc::split) distribution step.
    pub fn extract_owned(&mut self, owned: &[RouterId]) -> FaultState {
        let mut taken = Vec::new();
        self.events.retain_mut(|a| {
            if owned.binary_search(&a.event.router).is_ok() {
                taken.push(a.clone());
                false
            } else {
                true
            }
        });
        self.next_active = 0;
        FaultState {
            events: taken,
            next_active: 0,
        }
    }

    /// Whether any armed event is scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Called once at the top of each emit phase. Returns whether any event
    /// window covers `cycle`; off the active windows this is a single
    /// comparison against the cached next activation cycle.
    #[inline]
    pub fn begin_cycle(&mut self, cycle: u64) -> bool {
        if cycle < self.next_active {
            return false;
        }
        let mut any = false;
        let mut next = u64::MAX;
        for a in &self.events {
            if a.event.active_at(cycle) {
                any = true;
            }
            if a.event.until > cycle + 1 {
                next = next.min(a.event.from.max(cycle + 1));
            }
        }
        self.next_active = next;
        any
    }

    /// Applies every event active at `cycle` and located at `router`
    /// (global id) to the router's freshly-produced emissions and BE
    /// dequeues, in plan order. Drops and corruptions are tallied into the
    /// per-event health counters. Allocation-free: filtering retains in
    /// place on the caller's reusable buffers.
    pub fn filter(&mut self, router: RouterId, cycle: u64, result: &mut EmitResult) {
        for a in &mut self.events {
            if a.event.router != router || !a.event.active_at(cycle) {
                continue;
            }
            match a.event.kind {
                FaultKind::RouterStall => {
                    a.dropped_words += result.emissions.len() as u64;
                    result.emissions.clear();
                }
                FaultKind::LinkStuck => {
                    let port = a.event.port;
                    let before = result.emissions.len();
                    result.emissions.retain(|e| e.port != port);
                    a.dropped_words += (before - result.emissions.len()) as u64;
                }
                FaultKind::LinkFlaky { drop_ppm } => {
                    let port = a.event.port;
                    let rng = &mut a.rng;
                    let mut dropped = 0u64;
                    result.emissions.retain(|e| {
                        if e.port != port {
                            return true;
                        }
                        if rng.below(PPM_SCALE) < u64::from(drop_ppm) {
                            dropped += 1;
                            false
                        } else {
                            true
                        }
                    });
                    a.dropped_words += dropped;
                }
                FaultKind::SlotCorrupt { xor } => {
                    for e in &mut result.emissions {
                        if e.port == a.event.port {
                            e.word = e.word.with_word(e.word.word() ^ xor);
                            a.corrupted_words += 1;
                        }
                    }
                }
                FaultKind::CreditLoss { max } => {
                    let port = a.event.port;
                    let budget = u64::from(max).saturating_sub(a.lost_credits);
                    if budget == 0 {
                        continue;
                    }
                    let mut lost = 0u64;
                    result.be_dequeues.retain(|&p| {
                        if p == port && lost < budget {
                            lost += 1;
                            false
                        } else {
                            true
                        }
                    });
                    a.lost_credits += lost;
                }
            }
        }
    }

    /// Folds each event's location, window state and health counters into
    /// `report`. `cycle` decides the `active` flag; `upstream_of` maps a
    /// [`FaultKind::CreditLoss`] input port to the directed link actually
    /// harmed (the upstream producer's output toward it) — `None` leaves the
    /// event's own location in place.
    pub fn report_into(
        &self,
        cycle: u64,
        report: &mut FaultReport,
        upstream_of: impl Fn(RouterId, PortIdx) -> Option<(RouterId, PortIdx)>,
    ) {
        for a in &self.events {
            if !a.touched() && !a.event.active_at(cycle) {
                continue;
            }
            let router_wide = matches!(a.event.kind, FaultKind::RouterStall);
            let (router, port) = match a.event.kind {
                FaultKind::CreditLoss { .. } => upstream_of(a.event.router, a.event.port)
                    .unwrap_or((a.event.router, a.event.port)),
                _ => (a.event.router, a.event.port),
            };
            report.suspects.push(SuspectLink {
                event: a.index,
                router,
                port,
                router_wide,
                dropped_words: a.dropped_words,
                corrupted_words: a.corrupted_words,
                lost_credits: a.lost_credits,
                active: a.event.active_at(cycle),
            });
        }
    }
}

impl crate::persist::Persist for FaultState {
    /// Only the dynamic remainder is persisted — per-event generator
    /// positions, health counters and the activation cache. The schedule
    /// itself (kinds, locations, windows) is structural: a snapshot
    /// restores onto a network armed with the identical plan, exactly like
    /// topology wiring restores onto an identically-built network.
    fn persist(&mut self, p: &mut dyn crate::persist::PersistVisit) {
        p.item(&mut self.next_active);
        for a in &mut self.events {
            a.rng.persist(p);
            p.item(&mut a.dropped_words);
            p.item(&mut a.corrupted_words);
            p.item(&mut a.lost_credits);
        }
    }
}

/// One suspected directed link in a [`FaultReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspectLink {
    /// Index of the originating event in the armed plan (stable across
    /// shard distribution and report merging).
    pub event: usize,
    /// Router whose output is suspect.
    pub router: RouterId,
    /// Suspect output port (meaningless when `router_wide`).
    pub port: PortIdx,
    /// Whether the whole router's output stage is suspect (a stall): the
    /// healer should mask every link leaving the router.
    pub router_wide: bool,
    /// Words dropped on the link so far.
    pub dropped_words: u64,
    /// Words bit-corrupted on the link so far.
    pub corrupted_words: u64,
    /// BE credit returns swallowed so far.
    pub lost_credits: u64,
    /// Whether the fault window is still open at the report cycle.
    pub active: bool,
}

/// What detection surfaced: suspect links with their health counters, plus
/// the network-level GT watchdog counters (contention violations and
/// orphaned GT words — genuine symptoms, counted by the routers themselves)
/// and, when assembled by the NI layer, destination-side drop counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Suspect directed links, in plan-event order.
    pub suspects: Vec<SuspectLink>,
    /// GT contention violations observed network-wide (router watchdog).
    pub gt_conflicts: u64,
    /// GT words that arrived with no scheduled calendar entry (router
    /// watchdog; a corrupted slot table manifests here).
    pub gt_orphans: u64,
    /// Words the NIs dropped at the destination (unknown/disabled queue or
    /// a flow-control-violating overflow — see `aethereal-ni`). Filled in
    /// by the system layer; zero at the `Noc` level.
    pub ni_rx_drops: u64,
}

impl FaultReport {
    /// Whether anything at all was detected.
    pub fn is_clean(&self) -> bool {
        self.suspects.is_empty()
            && self.gt_conflicts == 0
            && self.gt_orphans == 0
            && self.ni_rx_drops == 0
    }

    /// Folds another shard's report in: suspects concatenate (each event is
    /// armed on exactly one shard) and watchdog counters sum. Suspects are
    /// re-sorted by plan-event index so merged reports are shard-count
    /// independent.
    pub fn merge(&mut self, other: &FaultReport) {
        self.suspects.extend_from_slice(&other.suspects);
        self.suspects.sort_by_key(|s| s.event);
        self.gt_conflicts += other.gt_conflicts;
        self.gt_orphans += other.gt_orphans;
        self.ni_rx_drops += other.ni_rx_drops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Emission;
    use crate::word::{LinkWord, WordClass};

    fn emissions(ports: &[PortIdx]) -> EmitResult {
        let mut r = EmitResult::default();
        for &p in ports {
            r.emissions.push(Emission {
                port: p,
                word: LinkWord::payload(0xAB, WordClass::Guaranteed, false),
            });
        }
        r
    }

    #[test]
    fn begin_cycle_caches_next_activation() {
        let mut plan = FaultPlan::new(1);
        plan.link_stuck(0, 1, 100, 110);
        let mut f = FaultState::arm(&plan);
        assert!(!f.begin_cycle(0));
        assert_eq!(f.next_active, 100);
        assert!(!f.begin_cycle(50));
        assert!(f.begin_cycle(100));
        assert!(f.begin_cycle(109));
        assert!(!f.begin_cycle(110));
        assert_eq!(f.next_active, u64::MAX);
    }

    #[test]
    fn stuck_drops_only_its_port() {
        let mut plan = FaultPlan::new(1);
        plan.link_stuck(3, 2, 0, 10);
        let mut f = FaultState::arm(&plan);
        let mut r = emissions(&[1, 2, 3]);
        f.filter(3, 5, &mut r);
        assert_eq!(
            r.emissions.iter().map(|e| e.port).collect::<Vec<_>>(),
            vec![1, 3]
        );
        f.filter(4, 5, &mut emissions(&[2])); // other router untouched
        let mut rep = FaultReport::default();
        f.report_into(5, &mut rep, |_, _| None);
        assert_eq!(rep.suspects.len(), 1);
        assert_eq!(rep.suspects[0].dropped_words, 1);
        assert!(rep.suspects[0].active);
    }

    #[test]
    fn stall_blacks_out_every_port() {
        let mut plan = FaultPlan::new(1);
        plan.router_stall(0, 0, 4);
        let mut f = FaultState::arm(&plan);
        let mut r = emissions(&[0, 1, 2]);
        f.filter(0, 1, &mut r);
        assert!(r.emissions.is_empty());
        let mut rep = FaultReport::default();
        f.report_into(1, &mut rep, |_, _| None);
        assert!(rep.suspects[0].router_wide);
        assert_eq!(rep.suspects[0].dropped_words, 3);
    }

    #[test]
    fn flaky_is_deterministic_and_word_driven() {
        let mut plan = FaultPlan::new(99);
        plan.link_flaky(0, 1, 0, u64::MAX, 500_000);
        let run = |gaps: &[u64]| {
            let mut f = FaultState::arm(&plan);
            let mut survived = Vec::new();
            let mut cycle = 0;
            for &g in gaps {
                cycle += g;
                let mut r = emissions(&[1]);
                f.filter(0, cycle, &mut r);
                survived.push(!r.emissions.is_empty());
            }
            survived
        };
        // Same word count, different cycle spacing: identical drop pattern
        // (the generator is word-driven, so time skips cannot desync it).
        let a = run(&[1; 64]);
        let b = run(&[7; 64]);
        assert_eq!(a, b);
        assert!(a.iter().any(|&s| s) && a.iter().any(|&s| !s));
    }

    #[test]
    fn corrupt_xors_data_and_keeps_flags() {
        let mut plan = FaultPlan::new(1);
        plan.slot_corrupt(2, 0, 0, 10, 0xFF);
        let mut f = FaultState::arm(&plan);
        let mut r = emissions(&[0]);
        f.filter(2, 0, &mut r);
        assert_eq!(r.emissions[0].word.word(), 0xAB ^ 0xFF);
        assert!(!r.emissions[0].word.is_header());
        assert_eq!(r.emissions[0].word.class(), WordClass::Guaranteed);
    }

    #[test]
    fn credit_loss_respects_budget_and_remaps_upstream() {
        let mut plan = FaultPlan::new(1);
        plan.credit_loss(1, 0, 0, 100, 2);
        let mut f = FaultState::arm(&plan);
        for _ in 0..3 {
            let mut r = EmitResult::default();
            r.be_dequeues.push(0);
            f.filter(1, 0, &mut r);
        }
        let mut rep = FaultReport::default();
        f.report_into(0, &mut rep, |r, p| {
            assert_eq!((r, p), (1, 0));
            Some((7, 3))
        });
        assert_eq!(rep.suspects[0].lost_credits, 2, "budget caps at max");
        assert_eq!((rep.suspects[0].router, rep.suspects[0].port), (7, 3));
    }

    #[test]
    fn shard_distribution_preserves_indices_and_state() {
        let mut plan = FaultPlan::new(5);
        plan.link_stuck(0, 1, 0, 10)
            .link_flaky(2, 0, 0, 10, 250_000)
            .router_stall(1, 0, 10);
        let mut whole = FaultState::arm(&plan);
        let part = FaultState::arm_for(&plan, &[2]);
        assert_eq!(part.events.len(), 1);
        assert_eq!(part.events[0].index, 1);
        // Same seed derivation either way.
        assert_eq!(part.events[0].rng, whole.events[1].rng);
        let moved = whole.extract_owned(&[0, 1]);
        assert_eq!(moved.events.len(), 2);
        assert_eq!(whole.events.len(), 1);
        assert_eq!(whole.events[0].index, 1);
    }

    #[test]
    fn report_merge_is_shard_count_independent() {
        let mut plan = FaultPlan::new(5);
        plan.link_stuck(0, 1, 0, 10).link_stuck(3, 2, 0, 10);
        let mut whole = FaultState::arm(&plan);
        let mut a = FaultState::arm_for(&plan, &[0]);
        let mut b = FaultState::arm_for(&plan, &[3]);
        for f in [&mut whole, &mut a, &mut b] {
            let mut r0 = emissions(&[1]);
            f.filter(0, 0, &mut r0);
            let mut r3 = emissions(&[2]);
            f.filter(3, 0, &mut r3);
        }
        let mut mono = FaultReport::default();
        whole.report_into(0, &mut mono, |_, _| None);
        // Merge in the "wrong" order: sorting by event index restores it.
        let mut merged = FaultReport::default();
        let mut rb = FaultReport::default();
        b.report_into(0, &mut rb, |_, _| None);
        merged.merge(&rb);
        let mut ra = FaultReport::default();
        a.report_into(0, &mut ra, |_, _| None);
        merged.merge(&ra);
        assert_eq!(mono, merged);
    }

    #[test]
    fn persist_round_trips_dynamic_state() {
        use crate::persist::{Persist, StateLoader, StateSaver};
        let mut plan = FaultPlan::new(42);
        plan.link_flaky(0, 1, 0, u64::MAX, 500_000);
        let mut f = FaultState::arm(&plan);
        for c in 0..32 {
            let mut r = emissions(&[1]);
            f.begin_cycle(c);
            f.filter(0, c, &mut r);
        }
        let mut saver = StateSaver::new();
        f.persist(&mut saver);
        let words = saver.finish().expect("clean save");
        let mut g = FaultState::arm(&plan);
        let mut loader = StateLoader::new(words);
        g.persist(&mut loader);
        loader.finish().expect("clean restore");
        // Continue both: identical decisions.
        for c in 32..64 {
            let mut rf = emissions(&[1]);
            let mut rg = emissions(&[1]);
            f.filter(0, c, &mut rf);
            g.filter(0, c, &mut rg);
            assert_eq!(rf.emissions.len(), rg.emissions.len());
        }
    }
}
