//! The assembled network: routers wired per a [`Topology`], plus the NI
//! attachment handles through which the `aethereal-ni` crate injects and
//! ejects words.
//!
//! [`Noc::tick`] advances one 500 MHz network cycle in two phases:
//!
//! 1. **emit** — every router output and every NI staging register places at
//!    most one word on its outgoing wire, based on state from the previous
//!    cycle;
//! 2. **absorb** — every router input and NI inbox registers the word on its
//!    incoming wire; BE dequeues from phase 1 return link-level credits to
//!    the upstream producers.
//!
//! This two-phase discipline makes every cycle race-free regardless of
//! iteration order, which in turn makes the GT slot alignment arithmetic
//! (slot `s` on hop `h` ⇒ slot `s+h` on hop `h+1`) exact.

use crate::engine::{Clocked, Engine};
use crate::link::{LinkId, LinkState};
use crate::path::PortIdx;
use crate::ring::Ring;
use crate::router::{EmitResult, Router, DEFAULT_BE_QUEUE_WORDS};
use crate::shard::{NocShard, Partition};
use crate::stats::{LinkStats, NocStats};
use crate::topology::{Endpoint, NiId, RouterId, Topology};
use crate::word::{LinkWord, WordClass, SLOT_WORDS};

/// Construction parameters for a [`Noc`].
#[derive(Debug, Clone, Copy)]
pub struct NocConfig {
    /// BE input-queue depth per router port, in words. Must be ≥ 2 when
    /// any BE traffic rides multi-segment routes: a gateway rewrite needs
    /// the exhausted header *and* its continuation word queued together,
    /// and a 1-word queue can never admit the continuation (the header's
    /// credit only returns once the rewrite happens).
    pub be_queue_words: usize,
    /// Capacity of the NI-side inbox (safety bound on how far an NI may lag
    /// in draining; generous because NIs sink at line rate).
    pub ni_inbox_words: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            be_queue_words: DEFAULT_BE_QUEUE_WORDS,
            ni_inbox_words: 4096,
        }
    }
}

/// The NI side of an attachment link: one outgoing staging register (the NI
/// controls the exact cycle each word enters the network — GT slot alignment
/// depends on it) and an incoming inbox.
#[derive(Debug, Clone)]
pub struct NiLink {
    outgoing: Option<LinkWord>,
    incoming: Ring<LinkWord>,
    credits: u32,
}

impl NiLink {
    fn new(initial_credits: u32, inbox_cap: usize) -> Self {
        NiLink {
            outgoing: None,
            incoming: Ring::with_capacity(inbox_cap),
            credits: initial_credits,
        }
    }

    /// Stages `word` for injection this cycle.
    ///
    /// BE words consume one link-level credit (the router's input-queue
    /// space); check [`NiLink::be_credits`] first. GT words need no credits —
    /// routers never buffer them.
    ///
    /// # Panics
    ///
    /// Panics if a word is already staged this cycle (the link carries one
    /// word per cycle) or if a BE word is sent without credits.
    pub fn send(&mut self, word: LinkWord) {
        assert!(
            self.outgoing.is_none(),
            "NI link already carries a word this cycle"
        );
        if word.class() == WordClass::BestEffort {
            assert!(self.credits > 0, "BE injection without link-level credit");
            self.credits -= 1;
        }
        self.outgoing = Some(word);
    }

    /// Whether a word is already staged this cycle.
    pub fn is_busy(&self) -> bool {
        self.outgoing.is_some()
    }

    /// Link-level BE credits available toward the router input queue.
    pub fn be_credits(&self) -> u32 {
        self.credits
    }

    /// Takes the next received word, if any.
    pub fn recv(&mut self) -> Option<LinkWord> {
        self.incoming.pop_front()
    }

    /// Peeks at the next received word.
    pub fn peek(&self) -> Option<&LinkWord> {
        self.incoming.front()
    }

    /// Number of received words waiting.
    pub fn pending(&self) -> usize {
        self.incoming.len()
    }
}

/// The assembled network-on-chip.
#[derive(Debug, Clone)]
pub struct Noc {
    routers: Vec<Router>,
    links: Vec<LinkState>,
    /// `out_link[router][port] = LinkId` of the directed link leaving there.
    out_link: Vec<Vec<Option<LinkId>>>,
    /// `in_src[router][port] = Endpoint` feeding that input.
    in_src: Vec<Vec<Option<Endpoint>>>,
    /// `ni_out_link[ni] = LinkId` of the NI → router link.
    ni_out_link: Vec<LinkId>,
    ni_links: Vec<NiLink>,
    /// Shard-boundary attachments: router ports whose physical peer lives
    /// in another shard's `Noc` (see [`crate::shard`]).
    boundaries: Vec<BoundaryPort>,
    /// `boundary_at[router][port] = boundary id` for boundary ports.
    boundary_at: Vec<Vec<Option<usize>>>,
    /// Boundary ids whose outbound side was written this cycle (words or
    /// credits) — the dirty list the shard runner drains between the global
    /// emit and absorb phases, so wires with no traffic cost zero exchange
    /// work.
    dirty_out: Vec<usize>,
    /// Boundary ids with delivered inbound traffic awaiting this cycle's
    /// absorb — the ingress mirror of `dirty_out`: absorb registers exactly
    /// these instead of scanning every boundary.
    dirty_in: Vec<usize>,
    /// Fused exchange handle (see [`Noc::attach_exchange`]): when present,
    /// boundary emissions and credits go straight into the shared arena's
    /// cut-wire rings during emit, and absorb consumes due slots straight
    /// out of them — the dirty lists and boundary registers stay unused.
    exchange: Option<crate::shard::ExchangeAttachment>,
    /// Construction parameters, kept so [`Noc::split`] can rebuild
    /// identically-configured shard networks.
    config: NocConfig,
    cycle: u64,
    stats: NocStats,
    /// Reusable per-tick scratch (cleared every cycle): keeps the
    /// steady-state tick free of allocations.
    scratch: TickScratch,
    /// Armed fault-injection machinery (see [`crate::fault`]): when
    /// present, the emit phase filters each router's emissions and BE
    /// credit returns through the active fault windows. `None` (the
    /// default) keeps the hot path untouched.
    fault: Option<crate::fault::FaultState>,
}

/// One shard-boundary attachment: the local half of a cut inter-router
/// link. The port's emissions land in `out_word` (instead of a wire), and
/// BE dequeues at the port's input earn credits for the remote producer in
/// `out_credits`; the shard runner exchanges both between the global emit
/// and absorb phases and delivers the remote side's words and credits into
/// `in_word` / `in_credits`, which the absorb phase registers exactly as a
/// wired link would.
#[derive(Debug, Clone)]
struct BoundaryPort {
    router: usize,
    port: PortIdx,
    out_word: Option<LinkWord>,
    out_credits: u32,
    /// Whether this boundary is on the [`Noc::dirty_out`] list.
    out_dirty: bool,
    in_word: Option<LinkWord>,
    in_credits: u32,
    /// Whether this boundary is on the [`Noc::dirty_in`] list.
    in_dirty: bool,
    /// Ingress tally: words absorbed from the remote side. Stands in for
    /// the cut directed link's [`LinkStats`] entry.
    stats: LinkStats,
}

/// Reusable buffers for one tick.
#[derive(Debug, Clone, Default)]
struct TickScratch {
    emit: EmitResult,
    /// `(router, input)` pairs owed one link-level BE credit this cycle.
    credit_returns: Vec<(usize, PortIdx)>,
}

impl Noc {
    /// Builds the network for `topology` with default parameters.
    pub fn new(topology: &Topology) -> Self {
        Self::with_config(topology, NocConfig::default())
    }

    /// Builds the network for `topology` with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `be_queue_words < 2`: a gateway rewrite needs the
    /// exhausted header and its continuation word queued together, so a
    /// 1-word BE queue would deadlock two-level BE traffic silently.
    pub fn with_config(topology: &Topology, config: NocConfig) -> Self {
        assert!(
            config.be_queue_words >= 2,
            "BE queues need at least 2 words (gateway rewrites queue the \
             header and its continuation together)"
        );
        let nr = topology.router_count();
        let mut routers: Vec<Router> = (0..nr)
            .map(|r| Router::new(r, topology.ports_of(r), config.be_queue_words))
            .collect();
        let mut links = Vec::new();
        let mut out_link: Vec<Vec<Option<LinkId>>> =
            (0..nr).map(|r| vec![None; topology.ports_of(r)]).collect();
        let mut in_src: Vec<Vec<Option<Endpoint>>> =
            (0..nr).map(|r| vec![None; topology.ports_of(r)]).collect();
        let add = |links: &mut Vec<LinkState>, src: Endpoint, dst: Endpoint| -> LinkId {
            let id = links.len();
            links.push(LinkState::new(src, dst));
            id
        };
        for e in topology.edges() {
            let a = Endpoint::Router {
                router: e.a,
                port: e.port_a,
            };
            let b = Endpoint::Router {
                router: e.b,
                port: e.port_b,
            };
            let ab = add(&mut links, a, b);
            let ba = add(&mut links, b, a);
            out_link[e.a][e.port_a as usize] = Some(ab);
            out_link[e.b][e.port_b as usize] = Some(ba);
            in_src[e.b][e.port_b as usize] = Some(a);
            in_src[e.a][e.port_a as usize] = Some(b);
        }
        let mut ni_out_link = Vec::new();
        let mut ni_links = Vec::new();
        for ni in 0..topology.ni_count() {
            let (r, p) = topology.ni_attachment(ni).expect("ni in range");
            let nie = Endpoint::Ni { ni };
            let re = Endpoint::Router { router: r, port: p };
            let to_router = add(&mut links, nie, re);
            let from_router = add(&mut links, re, nie);
            let _ = from_router;
            ni_out_link.push(to_router);
            out_link[r][p as usize] = Some(from_router);
            in_src[r][p as usize] = Some(nie);
            ni_links.push(NiLink::new(
                config.be_queue_words as u32,
                config.ni_inbox_words,
            ));
        }
        // Initialize per-output BE credit budgets: the downstream input
        // queue capacity (router inputs), or effectively unbounded for
        // router → NI links (the NI sinks at line rate; destination-buffer
        // space is governed by the NI's end-to-end credits).
        for (r, ports) in out_link.iter().enumerate() {
            for (p, l) in ports.iter().enumerate() {
                if let Some(l) = l {
                    let credits = match links[*l].dst {
                        Endpoint::Router { .. } => config.be_queue_words as u32,
                        Endpoint::Ni { .. } => u32::MAX / 2,
                    };
                    routers[r].set_out_credits(p as PortIdx, credits);
                }
            }
        }
        let n_links = links.len();
        let boundary_at = (0..nr).map(|r| vec![None; topology.ports_of(r)]).collect();
        Noc {
            routers,
            links,
            out_link,
            in_src,
            ni_out_link,
            ni_links,
            boundaries: Vec::new(),
            boundary_at,
            dirty_out: Vec::new(),
            dirty_in: Vec::new(),
            exchange: None,
            config,
            cycle: 0,
            stats: NocStats::new(n_links),
            scratch: TickScratch::default(),
            fault: None,
        }
    }

    /// Current cycle (500 MHz network clock).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current TDM slot index for a table of `stu_slots` slots.
    pub fn slot(&self, stu_slots: u64) -> u64 {
        (self.cycle / SLOT_WORDS) % stu_slots
    }

    /// Whether the current cycle is a slot boundary.
    pub fn at_slot_boundary(&self) -> bool {
        self.cycle.is_multiple_of(SLOT_WORDS)
    }

    /// Number of NIs attached.
    pub fn ni_count(&self) -> usize {
        self.ni_links.len()
    }

    /// The attachment handle of NI `ni`.
    ///
    /// # Panics
    ///
    /// Panics if `ni` is out of range.
    pub fn ni_link_mut(&mut self, ni: NiId) -> &mut NiLink {
        &mut self.ni_links[ni]
    }

    /// Immutable access to the attachment handle of NI `ni`.
    pub fn ni_link(&self, ni: NiId) -> &NiLink {
        &self.ni_links[ni]
    }

    /// The routers (for inspection).
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// All link states (for inspection).
    pub fn links(&self) -> &[LinkState] {
        &self.links
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Total GT contention violations across all routers (invariant: zero).
    pub fn gt_conflicts(&self) -> u64 {
        self.routers.iter().map(Router::gt_conflicts).sum()
    }

    /// Total BE credit-discipline violations across all routers (invariant:
    /// zero).
    pub fn be_overflows(&self) -> u64 {
        self.routers.iter().map(Router::be_overflows).sum()
    }

    // ---- Fault injection (see `crate::fault`) ------------------------

    /// Arms `plan` on this network. From the first cycle of any event
    /// window onward, the emit phase filters emissions and BE credit
    /// returns through the plan; outside the windows the armed hooks cost
    /// one comparison per cycle. Arming (even an empty plan) marks the
    /// network faulted, which conservatively declines all fast-forward
    /// certification until [`Noc::disarm_faults`].
    ///
    /// # Panics
    ///
    /// Panics if a plan is already armed (disarm first — replacing a live
    /// plan silently would break deterministic replay).
    pub fn arm_faults(&mut self, plan: &crate::fault::FaultPlan) {
        assert!(self.fault.is_none(), "a fault plan is already armed");
        self.fault = Some(crate::fault::FaultState::arm(plan));
    }

    /// Arms only the events of `plan` whose router is in the **sorted**
    /// `owned` list — how a sharded system distributes one plan across its
    /// regions so every event runs on exactly one shard, with the same
    /// per-event generator seeds as a monolithic arm.
    ///
    /// # Panics
    ///
    /// Panics if a plan is already armed.
    pub fn arm_faults_for(&mut self, plan: &crate::fault::FaultPlan, owned: &[RouterId]) {
        assert!(self.fault.is_none(), "a fault plan is already armed");
        self.fault = Some(crate::fault::FaultState::arm_for(plan, owned));
    }

    /// Drops the armed fault machinery (scheduled windows, generator
    /// state and health counters), returning the network to the unarmed
    /// hot path and re-enabling fast-forward eligibility.
    pub fn disarm_faults(&mut self) {
        self.fault = None;
    }

    /// Whether fault machinery is armed — `true` from [`Noc::arm_faults`]
    /// until [`Noc::disarm_faults`], even when every window has expired
    /// (the conservative fast-forward gate).
    pub fn fault_armed(&self) -> bool {
        self.fault.is_some()
    }

    /// Builds the detection report: the armed events' per-link health
    /// counters (links that dropped, corrupted or starved traffic, plus
    /// still-open windows) and the routers' GT watchdog counters.
    /// Credit-loss events are remapped to the upstream producer's directed
    /// link — the link a healer must route around. NI-side drop counts are
    /// folded in by the system layer (`aethereal-cfg`).
    pub fn fault_report(&self) -> crate::fault::FaultReport {
        let mut report = crate::fault::FaultReport {
            gt_conflicts: self.gt_conflicts(),
            gt_orphans: self.routers.iter().map(Router::gt_orphans).sum(),
            ..Default::default()
        };
        if let Some(f) = &self.fault {
            f.report_into(self.cycle, &mut report, |gr, p| {
                let lr = self.routers.iter().position(|r| r.id() == gr)?;
                match self.in_src[lr].get(p as usize).copied().flatten() {
                    // `in_src` endpoints are shard-local; report global ids.
                    Some(Endpoint::Router { router, port }) => {
                        Some((self.routers[router].id(), port))
                    }
                    _ => None,
                }
            });
        }
        report
    }

    // ---- Shard boundaries (see `crate::shard`) -----------------------

    /// Declares the unwired `(router, port)` as a shard-boundary
    /// attachment: the local half of an inter-router link that was cut by a
    /// [`Partition`]. Returns the boundary id surfaced by
    /// [`Noc::take_dirty_boundary`] and used with
    /// [`Noc::put_boundary_in`].
    ///
    /// The port's output is granted the standard inter-router BE credit
    /// budget (the remote input queue's capacity).
    ///
    /// # Panics
    ///
    /// Panics if the port is already wired or already a boundary.
    pub fn open_boundary(&mut self, router: RouterId, port: PortIdx) -> usize {
        let p = port as usize;
        assert!(
            self.out_link[router][p].is_none() && self.in_src[router][p].is_none(),
            "router {router} port {port} is wired inside this shard"
        );
        assert!(
            self.boundary_at[router][p].is_none(),
            "router {router} port {port} is already a boundary"
        );
        let id = self.boundaries.len();
        self.boundaries.push(BoundaryPort {
            router,
            port,
            out_word: None,
            out_credits: 0,
            out_dirty: false,
            in_word: None,
            in_credits: 0,
            in_dirty: false,
            stats: LinkStats::default(),
        });
        self.boundary_at[router][p] = Some(id);
        self.routers[router].set_out_credits(port, self.config.be_queue_words as u32);
        id
    }

    /// Number of boundary attachments.
    pub fn boundary_count(&self) -> usize {
        self.boundaries.len()
    }

    /// Installs a fused exchange handle: from here on, boundary emissions
    /// and earned credits are written **in place** into the shared arena's
    /// cut-wire rings during [`Clocked::emit`], and [`Clocked::absorb`]
    /// consumes each inbound ring's slot at exactly its due cycle — no
    /// dirty lists, no register copies, no per-event runner bridge (see
    /// [`crate::shard::ShardRunner::fuse`]). Cloning a fused network
    /// clones the handle, which **shares** the arena — split the clone's
    /// attachment off with a fresh [`crate::shard::ShardRunner`] before
    /// driving both.
    ///
    /// # Panics
    ///
    /// Panics if the attachment's boundary maps do not cover exactly this
    /// network's boundaries, or if a handle is already installed.
    pub fn attach_exchange(&mut self, exchange: crate::shard::ExchangeAttachment) {
        assert!(self.exchange.is_none(), "exchange already attached");
        assert_eq!(
            exchange.boundaries(),
            self.boundaries.len(),
            "attachment must map every boundary"
        );
        self.exchange = Some(exchange);
    }

    /// Whether a fused exchange handle is installed.
    pub fn exchange_attached(&self) -> bool {
        self.exchange.is_some()
    }

    /// Takes one dirty boundary's outbound traffic — the boundary id plus
    /// the word and credits its emit phase produced this cycle — or `None`
    /// when every cut wire is quiet. The shard runner drains this between
    /// the global emit and absorb phases; boundaries with no traffic never
    /// appear, so quiet wires cost nothing.
    pub fn take_dirty_boundary(&mut self) -> Option<(usize, Option<LinkWord>, u32)> {
        let b = self.dirty_out.pop()?;
        let bp = &mut self.boundaries[b];
        debug_assert!(bp.out_dirty);
        bp.out_dirty = false;
        Some((b, bp.out_word.take(), std::mem::take(&mut bp.out_credits)))
    }

    /// Marks boundary `b` dirty (first outbound write this cycle appends it
    /// to the drain list).
    #[inline]
    fn mark_boundary_dirty(boundaries: &mut [BoundaryPort], dirty_out: &mut Vec<usize>, b: usize) {
        if !boundaries[b].out_dirty {
            boundaries[b].out_dirty = true;
            dirty_out.push(b);
        }
    }

    /// Delivers the remote side's outbound traffic for this cycle; the
    /// absorb phase registers the word into the router input and returns
    /// the credits to the local output, exactly as a wired link would.
    ///
    /// # Panics
    ///
    /// Panics if a word is already pending (one word per link per cycle).
    pub fn put_boundary_in(&mut self, b: usize, word: Option<LinkWord>, credits: u32) {
        let bp = &mut self.boundaries[b];
        if word.is_some() {
            assert!(bp.in_word.is_none(), "boundary {b} already carries a word");
            bp.in_word = word;
        }
        bp.in_credits += credits;
        if !bp.in_dirty && (bp.in_word.is_some() || bp.in_credits > 0) {
            bp.in_dirty = true;
            self.dirty_in.push(b);
        }
    }

    /// Ingress tally of boundary `b`: the words absorbed from the remote
    /// side, standing in for the cut directed link's per-link counters.
    pub fn boundary_stats(&self, b: usize) -> &LinkStats {
        &self.boundaries[b].stats
    }

    /// Splits a **drained** network into per-shard networks along the cut
    /// computed by `partition`, moving every router, NI handle and per-link
    /// counter into its shard so that lockstep execution of the shards
    /// (with boundary words exchanged between the global emit and absorb
    /// phases — see [`crate::shard::ShardRunner`]) is bit-identical to
    /// ticking `self`.
    ///
    /// `topology` must be the topology this network was built from.
    ///
    /// # Panics
    ///
    /// Panics if the network still carries state on wires, in router queues
    /// or in NI staging/inboxes (`quiescent` is the precondition that makes
    /// the cut exact), if the topology does not match, or if the partition
    /// is invalid for the topology.
    pub fn split(mut self, topology: &Topology, partition: &Partition) -> Vec<NocShard> {
        assert_eq!(
            topology.router_count(),
            self.routers.len(),
            "topology does not match this network"
        );
        assert_eq!(topology.ni_count(), self.ni_links.len());
        assert!(
            self.boundaries.is_empty(),
            "cannot split an already-sharded network"
        );
        assert!(
            self.drained(),
            "split requires a drained network (wires, routers, GT calendars \
             and NI handles empty)"
        );
        partition
            .validate(topology)
            .expect("partition fits topology");
        let pieces = partition.pieces(topology);
        let cuts = partition.cut_edges(topology);
        let global_edges = topology.edges().len();
        let mut out = Vec::with_capacity(pieces.len());
        for (s, piece) in pieces.into_iter().enumerate() {
            let mut noc = Noc::with_config(&piece.topology, self.config);
            // Open boundaries in global cut order; record for each the
            // global id of its *ingress* directed link (the one whose words
            // this side absorbs) so stats merge back exactly.
            let mut boundary_links = Vec::new();
            let mut cut_ids = Vec::new();
            for (k, c) in cuts.iter().enumerate() {
                if c.a_shard == s {
                    let lr = piece
                        .routers
                        .binary_search(&c.a_router)
                        .expect("router in shard");
                    noc.open_boundary(lr, c.a_port);
                    // Global link ids: edge k' wires a→b as 2k', b→a as
                    // 2k'+1; the a-side ingests the b→a direction.
                    boundary_links.push(2 * c.edge + 1);
                    cut_ids.push(k);
                }
                if c.b_shard == s {
                    let lr = piece
                        .routers
                        .binary_search(&c.b_router)
                        .expect("router in shard");
                    noc.open_boundary(lr, c.b_port);
                    boundary_links.push(2 * c.edge);
                    cut_ids.push(k);
                }
            }
            // Move the live state: routers (with their counters and credit
            // registers) and NI attachment handles.
            for (lr, &gr) in piece.routers.iter().enumerate() {
                noc.routers[lr] = std::mem::replace(&mut self.routers[gr], Router::new(gr, 1, 1));
            }
            for (ln, &gn) in piece.nis.iter().enumerate() {
                noc.ni_links[ln] = std::mem::replace(&mut self.ni_links[gn], NiLink::new(0, 1));
            }
            noc.cycle = self.cycle;
            // Armed fault events move to the shard owning their router
            // (ids are global, so no remapping; dynamic state — generator
            // positions, health counters — travels unchanged). Every shard
            // stays *armed* even with no local events, so the conservative
            // fast-forward gate holds across the whole fleet.
            if let Some(f) = self.fault.as_mut() {
                noc.fault = Some(f.extract_owned(&piece.routers));
            }
            // Per-link counters follow their links; scalars stay on shard 0
            // (merging sums shards, so pre-split history must not double).
            let local_edges = piece.topology.edges().len();
            let mut link_map = vec![0; noc.links.len()];
            for (j, &ge) in piece.edge_map.iter().enumerate() {
                link_map[2 * j] = 2 * ge;
                link_map[2 * j + 1] = 2 * ge + 1;
            }
            for (ln, &gn) in piece.nis.iter().enumerate() {
                link_map[2 * local_edges + 2 * ln] = 2 * global_edges + 2 * gn;
                link_map[2 * local_edges + 2 * ln + 1] = 2 * global_edges + 2 * gn + 1;
            }
            for (l, &g) in link_map.iter().enumerate() {
                noc.stats.links[l] = self.stats.links[g];
            }
            for (b, &g) in boundary_links.iter().enumerate() {
                noc.boundaries[b].stats = self.stats.links[g];
            }
            noc.stats.cycles = self.cycle;
            noc.stats.gt_conflicts = noc.gt_conflicts();
            if s == 0 {
                noc.stats.delivered = self.stats.delivered;
                noc.stats.be_overflows = self.stats.be_overflows;
            }
            out.push(NocShard {
                noc,
                routers: piece.routers,
                nis: piece.nis,
                link_map,
                boundary_links,
                cuts: cut_ids,
            });
        }
        out
    }

    /// Whether nothing at all is in flight: all wires idle, all routers
    /// fully drained (GT calendars included), no staged NI word, no
    /// undrained NI inbox and no pending boundary traffic. This is the
    /// strict precondition of [`Noc::split`]; the [`Clocked::quiescent`]
    /// notion is weaker — it also holds while scheduled GT emissions wait
    /// for their due cycle.
    pub fn drained(&self) -> bool {
        self.routers.iter().all(Router::idle) && self.calendar_dormant()
    }

    /// The non-router part of quiescence: wires, NI handles and boundaries
    /// all empty, routers holding at most scheduled GT emissions.
    fn calendar_dormant(&self) -> bool {
        self.routers.iter().all(Router::calendar_idle)
            && self.links.iter().all(|l| l.wire.is_none())
            && self
                .ni_links
                .iter()
                .all(|h| h.outgoing.is_none() && h.incoming.is_empty())
            && self.boundaries.iter().all(|b| {
                b.out_word.is_none()
                    && b.in_word.is_none()
                    && b.out_credits == 0
                    && b.in_credits == 0
            })
    }

    /// Whether no best-effort traffic exists anywhere in the network: all
    /// router BE queues, worms and arbitration state idle, and no BE-class
    /// word on any wire, NI handle or boundary register. This is part of
    /// the fast-forward eligibility gate (see [`crate::ff`]): BE progress
    /// depends on round-robin arbitration history and credit dynamics,
    /// which the analytical GT model does not extrapolate.
    pub fn be_quiet(&self) -> bool {
        let be = |w: &LinkWord| w.class() == WordClass::BestEffort;
        self.routers.iter().all(Router::be_quiet)
            && !self.links.iter().any(|l| l.wire.as_ref().is_some_and(be))
            && !self
                .ni_links
                .iter()
                .any(|h| h.outgoing.as_ref().is_some_and(be) || h.incoming.iter().any(be))
            && !self
                .boundaries
                .iter()
                .any(|b| b.out_word.as_ref().is_some_and(be) || b.in_word.as_ref().is_some_and(be))
    }

    /// Whether every shard boundary is completely silent: no pending word,
    /// credit or dirty mark in either direction. A region may only
    /// fast-forward while its cut wires are silent — the probe ticks the
    /// region alone, so any boundary exchange during the probed window
    /// would be lost.
    pub fn boundaries_silent(&self) -> bool {
        self.dirty_out.is_empty()
            && self.dirty_in.is_empty()
            && self.boundaries.iter().all(|b| {
                b.out_word.is_none()
                    && b.in_word.is_none()
                    && b.out_credits == 0
                    && b.in_credits == 0
            })
            && self.exchange.as_ref().is_none_or(|x| x.silent())
    }

    /// Follows a source route hop by hop from NI `ni`'s attachment point
    /// and reports whether it ever leaves this (possibly sharded) network
    /// through a boundary port or an unwired port. `hops` is the full hop
    /// sequence across all route segments
    /// ([`Route::iter_hops`](crate::Route::iter_hops)).
    ///
    /// Used by the shard runner's fast-forward gate: a region may only
    /// extrapolate GT streams whose circuits are entirely local.
    pub fn route_crosses_boundary(&self, ni: NiId, hops: impl Iterator<Item = PortIdx>) -> bool {
        let mut ep = self.links[self.ni_out_link[ni]].dst;
        for p in hops {
            let r = match ep {
                Endpoint::Router { router, .. } => router,
                // Delivered to an NI; trailing hops can't leave anymore.
                Endpoint::Ni { .. } => return false,
            };
            let p = p as usize;
            if self.boundary_at[r][p].is_some() {
                return true;
            }
            match self.out_link[r][p] {
                Some(l) => ep = self.links[l].dst,
                // An unwired port swallows the word here; conservatively
                // treat it as leaving the region.
                None => return true,
            }
        }
        false
    }

    /// Walks the complete wire-visible state of the network through a
    /// fast-forward visitor (see [`crate::ff`]): the cycle counter, all
    /// statistics counters, every wire, NI handle, boundary register and
    /// router.
    pub fn ff_visit(&mut self, v: &mut dyn crate::ff::FfVisit) {
        use crate::ff::{visit_opt_word, visit_word};
        // Armed faults make the future non-extrapolable (drops are not
        // periodic, and flaky links are probabilistic): poison any
        // fast-forward certification outright, independent of the
        // system-level eligibility gates.
        if self.fault.is_some() {
            v.reject();
        }
        v.counter(&mut self.cycle);
        v.counter(&mut self.stats.cycles);
        v.counter(&mut self.stats.gt_conflicts);
        v.counter(&mut self.stats.be_overflows);
        for d in &mut self.stats.delivered {
            v.counter(d);
        }
        for ls in &mut self.stats.links {
            for w in &mut ls.words {
                v.counter(w);
            }
            for h in &mut ls.headers {
                v.counter(h);
            }
        }
        for l in &mut self.links {
            visit_opt_word(&mut l.wire, v);
        }
        for h in &mut self.ni_links {
            visit_opt_word(&mut h.outgoing, v);
            v.exact(h.incoming.len() as u64);
            for i in 0..h.incoming.len() {
                visit_word(h.incoming.get_mut(i).expect("index in range"), v);
            }
            v.exact(u64::from(h.credits));
        }
        v.exact(self.dirty_out.len() as u64);
        v.exact(self.dirty_in.len() as u64);
        // Arena ring occupancy on this region's wires: any in-flight cut
        // word or credit rejects a fast-forward attempt (the jump would
        // skip its due cycle).
        if let Some(x) = &self.exchange {
            v.exact(x.occupied() as u64);
        }
        for b in &mut self.boundaries {
            visit_opt_word(&mut b.out_word, v);
            v.exact(u64::from(b.out_credits));
            v.exact(u64::from(b.out_dirty));
            visit_opt_word(&mut b.in_word, v);
            v.exact(u64::from(b.in_credits));
            v.exact(u64::from(b.in_dirty));
            for w in &mut b.stats.words {
                v.counter(w);
            }
            for hd in &mut b.stats.headers {
                v.counter(hd);
            }
        }
        for r in &mut self.routers {
            r.ff_visit(v);
        }
    }

    /// Walks the network's complete dynamic state through the persistence
    /// visitor (see [`crate::persist`]): the snapshot twin of
    /// [`Noc::ff_visit`]. Everything the fast-forward walk classifies is
    /// persisted — cycle, statistics, wires, NI handles, boundary
    /// registers, dirty lists, routers — while structural wiring (the
    /// topology maps, the config) and the fused exchange handle stay
    /// outside: a snapshot restores onto an identically-built network, and
    /// in-flight arena state travels with the shard runner's walk, not the
    /// region's. The per-tick scratch is transient (cleared at the top of
    /// every emit) and carries nothing between cycles.
    fn persist_walk(&mut self, p: &mut dyn crate::persist::PersistVisit) {
        use crate::persist::{
            persist_bool, persist_opt_word, persist_ring, persist_u32, persist_usize_list,
            persist_word, Persist,
        };
        p.item(&mut self.cycle);
        p.item(&mut self.stats.cycles);
        p.item(&mut self.stats.gt_conflicts);
        p.item(&mut self.stats.be_overflows);
        for d in &mut self.stats.delivered {
            p.item(d);
        }
        for ls in &mut self.stats.links {
            for w in &mut ls.words {
                p.item(w);
            }
            for h in &mut ls.headers {
                p.item(h);
            }
        }
        for l in &mut self.links {
            persist_opt_word(&mut l.wire, p);
        }
        let empty = LinkWord::header_only(0, WordClass::BestEffort);
        for h in &mut self.ni_links {
            persist_opt_word(&mut h.outgoing, p);
            persist_ring(&mut h.incoming, empty, p, |w, p| persist_word(w, p));
            persist_u32(&mut h.credits, p);
        }
        persist_usize_list(&mut self.dirty_out, p);
        persist_usize_list(&mut self.dirty_in, p);
        for b in &mut self.boundaries {
            persist_opt_word(&mut b.out_word, p);
            persist_u32(&mut b.out_credits, p);
            persist_bool(&mut b.out_dirty, p);
            persist_opt_word(&mut b.in_word, p);
            persist_u32(&mut b.in_credits, p);
            persist_bool(&mut b.in_dirty, p);
            for w in &mut b.stats.words {
                p.item(w);
            }
            for hd in &mut b.stats.headers {
                p.item(hd);
            }
        }
        for r in &mut self.routers {
            r.persist(p);
        }
        // Armed fault machinery: dynamic remainder only (generator
        // positions, health counters, activation cache). The schedule is
        // structural — a snapshot of a faulted run restores onto a network
        // armed with the identical plan, exactly as wiring restores onto
        // an identically-built topology; unarmed snapshots carry nothing
        // extra, so pre-fault golden snapshots stay byte-stable.
        if let Some(f) = &mut self.fault {
            f.persist(p);
        }
    }

    /// The earliest due cycle across every router's GT calendar (`u64::MAX`
    /// when all calendars are empty).
    pub fn next_gt_due(&self) -> u64 {
        self.routers
            .iter()
            .map(Router::next_gt_due)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Advances the network by one cycle (emit, then absorb — a thin
    /// wrapper over [`Engine::tick`]).
    pub fn tick(&mut self) {
        Engine::tick(self);
    }

    /// Runs `n` cycles through [`Engine::run`] (with its quiescent fast
    /// path).
    pub fn run(&mut self, n: u64) {
        Engine::run(self, n);
    }
}

impl crate::persist::Persist for Noc {
    fn persist(&mut self, p: &mut dyn crate::persist::PersistVisit) {
        self.persist_walk(p);
    }
}

impl Clocked for Noc {
    fn now(&self) -> u64 {
        self.cycle
    }

    /// Phase 1: every router output and every NI staging register places at
    /// most one word on its outgoing wire, based on previous-cycle state.
    fn emit(&mut self) {
        let cycle = self.cycle;
        debug_assert!(self.scratch.credit_returns.is_empty());
        // Armed faults: one comparison per cycle decides whether any event
        // window is open; only then does the per-router filter run. The
        // filter acts here — before emissions reach a wire, boundary
        // register or arena ring — so a fault on a cut wire is identical
        // monolithic or sharded: the exchange simply never sees the word.
        let fault_active = match &mut self.fault {
            Some(f) => f.begin_cycle(cycle),
            None => false,
        };
        // Fused: boundary traffic goes straight into the arena rings (the
        // handle is moved out for the phase so boundary state stays
        // borrowable).
        let exchange = self.exchange.take();
        // Routers.
        for r in 0..self.routers.len() {
            let mut result = std::mem::take(&mut self.scratch.emit);
            self.routers[r].emit_into(cycle, &mut result);
            if fault_active {
                let rid = self.routers[r].id();
                if let Some(f) = &mut self.fault {
                    f.filter(rid, cycle, &mut result);
                }
            }
            for e in &result.emissions {
                if let Some(l) = self.out_link[r][e.port as usize] {
                    debug_assert!(self.links[l].wire.is_none());
                    self.links[l].wire = Some(e.word);
                } else if let Some(b) = self.boundary_at[r][e.port as usize] {
                    if let Some(x) = &exchange {
                        x.out_ring(b).send_word(cycle, e.word);
                    } else {
                        debug_assert!(self.boundaries[b].out_word.is_none());
                        self.boundaries[b].out_word = Some(e.word);
                        Self::mark_boundary_dirty(&mut self.boundaries, &mut self.dirty_out, b);
                    }
                }
            }
            for &input in &result.be_dequeues {
                // A dequeue at a boundary input earns its credit for the
                // *remote* producer: export it now so the exchange delivers
                // it into the same cycle's absorb, exactly like the
                // wired-link return below.
                if let Some(b) = self.boundary_at[r][input as usize] {
                    if let Some(x) = &exchange {
                        x.out_ring(b).send_credits(cycle, 1);
                    } else {
                        self.boundaries[b].out_credits += 1;
                        Self::mark_boundary_dirty(&mut self.boundaries, &mut self.dirty_out, b);
                    }
                } else {
                    self.scratch.credit_returns.push((r, input));
                }
            }
            self.scratch.emit = result;
        }
        self.exchange = exchange;
        // NIs.
        for (ni, handle) in self.ni_links.iter_mut().enumerate() {
            if let Some(word) = handle.outgoing.take() {
                let l = self.ni_out_link[ni];
                debug_assert!(self.links[l].wire.is_none());
                self.links[l].wire = Some(word);
            }
        }
    }

    /// Phase 2: every router input and NI inbox registers the word on its
    /// incoming wire; BE dequeues from phase 1 return link-level credits to
    /// the upstream producers.
    fn absorb(&mut self) {
        let cycle = self.cycle;
        // Boundary ingress: words and credits the shard runner delivered
        // from remote shards register exactly like wired-link arrivals
        // (only boundaries that actually received something are visited).
        while let Some(b) = self.dirty_in.pop() {
            let bp = &mut self.boundaries[b];
            debug_assert!(bp.in_dirty);
            bp.in_dirty = false;
            let (r, p) = (bp.router, bp.port);
            if let Some(word) = bp.in_word.take() {
                bp.stats.record(word.class(), word.is_header());
                self.routers[r].absorb(p, word, cycle);
            }
            for _ in 0..std::mem::take(&mut self.boundaries[b].in_credits) {
                self.routers[r].add_out_credit(p);
            }
        }
        // Fused boundary ingress: consume each inbound ring's slot at
        // exactly this cycle, straight out of the arena. Per-output GT
        // calendars make the iteration order across boundaries immaterial,
        // like the wired-link loop below.
        let exchange = self.exchange.take();
        if let Some(x) = &exchange {
            for b in 0..self.boundaries.len() {
                if let Some((word, credits)) = x.in_ring(b).take_due(cycle) {
                    let bp = &mut self.boundaries[b];
                    let (r, p) = (bp.router, bp.port);
                    if let Some(word) = word {
                        bp.stats.record(word.class(), word.is_header());
                        self.routers[r].absorb(p, word, cycle);
                    }
                    for _ in 0..credits {
                        self.routers[r].add_out_credit(p);
                    }
                }
            }
        }
        self.exchange = exchange;
        for l in 0..self.links.len() {
            let Some(word) = self.links[l].wire.take() else {
                continue;
            };
            self.stats.links[l].record(word.class(), word.is_header());
            match self.links[l].dst {
                Endpoint::Router { router, port } => {
                    self.routers[router].absorb(port, word, cycle);
                }
                Endpoint::Ni { ni } => {
                    let handle = &mut self.ni_links[ni];
                    if handle.incoming.push_back(word).is_ok() {
                        self.stats.delivered[word.class().index()] += 1;
                    } else {
                        // NI failed to drain: account as BE overflow; the
                        // invariant tests require this to stay zero.
                        self.stats.be_overflows += 1;
                    }
                }
            }
        }
        // Return link-level credits earned by this cycle's BE dequeues.
        for (r, input) in self.scratch.credit_returns.drain(..) {
            match self.in_src[r][input as usize] {
                Some(Endpoint::Router { router, port }) => {
                    self.routers[router].add_out_credit(port);
                }
                Some(Endpoint::Ni { ni }) => {
                    self.ni_links[ni].credits += 1;
                }
                None => {}
            }
        }
        self.stats.gt_conflicts = self.gt_conflicts();
        self.cycle += 1;
        self.stats.cycles = self.cycle;
    }

    /// The network is quiescent when a tick can change only time-derived
    /// counters: all wires idle, no staged NI word, no undrained NI inbox,
    /// no pending boundary traffic, and every router either fully drained
    /// or holding only *scheduled GT emissions whose due cycle has not
    /// arrived*. Pending calendars do not block quiescence — they are pure
    /// timetables, untouched by ticks before their due cycle — but the
    /// earliest due cycle caps [`Clocked::next_event`], so no driver ever
    /// skips a due emission (the calendar-sleep path).
    fn quiescent(&self) -> bool {
        self.calendar_dormant() && self.next_gt_due() > self.cycle
    }

    /// The earliest scheduled GT due cycle — the only spontaneous future
    /// event a quiescent network can have (`u64::MAX` when fully drained).
    fn next_event(&self, now: u64) -> u64 {
        let _ = now;
        self.next_gt_due()
    }

    fn skip(&mut self, cycles: u64) {
        debug_assert!(
            self.next_gt_due() >= self.cycle.saturating_add(cycles),
            "skip past a scheduled GT emission"
        );
        self.cycle += cycles;
        self.stats.cycles = self.cycle;
        self.stats.gt_conflicts = self.gt_conflicts();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::PacketHeader;
    use crate::path::Path;
    use crate::topology::Topology;

    fn be_packet(path: Path, qid: u8, payload: &[u32]) -> Vec<LinkWord> {
        let h = PacketHeader {
            path,
            qid,
            credits: 0,
            flush: false,
        };
        let mut words = Vec::new();
        if payload.is_empty() {
            words.push(LinkWord::header_only(h.pack(), WordClass::BestEffort));
        } else {
            words.push(LinkWord::header(h.pack(), WordClass::BestEffort));
            for (i, &w) in payload.iter().enumerate() {
                words.push(LinkWord::payload(
                    w,
                    WordClass::BestEffort,
                    i + 1 == payload.len(),
                ));
            }
        }
        words
    }

    fn gt_packet(path: Path, qid: u8, payload: &[u32]) -> Vec<LinkWord> {
        let h = PacketHeader {
            path,
            qid,
            credits: 0,
            flush: false,
        };
        let mut words = Vec::new();
        if payload.is_empty() {
            words.push(LinkWord::header_only(h.pack(), WordClass::Guaranteed));
        } else {
            words.push(LinkWord::header(h.pack(), WordClass::Guaranteed));
            for (i, &w) in payload.iter().enumerate() {
                words.push(LinkWord::payload(
                    w,
                    WordClass::Guaranteed,
                    i + 1 == payload.len(),
                ));
            }
        }
        words
    }

    /// Drives a word sequence into an NI link, one word per cycle.
    fn drive(noc: &mut Noc, ni: NiId, words: &[LinkWord]) {
        for w in words {
            noc.ni_link_mut(ni).send(*w);
            noc.tick();
        }
    }

    fn drain(noc: &mut Noc, ni: NiId) -> Vec<LinkWord> {
        let mut out = Vec::new();
        while let Some(w) = noc.ni_link_mut(ni).recv() {
            out.push(w);
        }
        out
    }

    #[test]
    fn be_packet_delivered_across_mesh() {
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let path = topo.route(0, 3).unwrap();
        drive(&mut noc, 0, &be_packet(path, 5, &[10, 20, 30]));
        noc.run(20);
        let got = drain(&mut noc, 3);
        assert_eq!(got.len(), 4);
        assert!(got[0].is_header());
        assert_eq!(PacketHeader::unpack(got[0].word()).qid, 5);
        // Path fully consumed on arrival.
        assert!(PacketHeader::unpack(got[0].word()).path.is_empty());
        assert_eq!(got[1].word(), 10);
        assert_eq!(got[3].word(), 30);
        assert!(got[3].is_tail());
        assert_eq!(noc.gt_conflicts(), 0);
        assert_eq!(noc.be_overflows(), 0);
    }

    #[test]
    fn gt_packet_latency_is_one_slot_per_hop() {
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let path = topo.route(0, 3).unwrap(); // 3 hops incl. ejection
        let words = gt_packet(path, 1, &[100, 200]);
        // Inject exactly at a slot boundary (cycle 0).
        assert!(noc.at_slot_boundary());
        let start = noc.cycle();
        drive(&mut noc, 0, &words);
        // Header crosses 3 routers at 3 cycles each: arrives end of cycle
        // start + 3*3 = 9 → visible after tick 9 completes.
        let mut arrival = None;
        for _ in 0..40 {
            noc.tick();
            if noc.ni_link(3).pending() > 0 && arrival.is_none() {
                arrival = Some(noc.cycle() - 1);
            }
        }
        assert_eq!(arrival, Some(start + 3 * SLOT_WORDS));
        let got = drain(&mut noc, 3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[1].word(), 100);
        assert_eq!(noc.gt_conflicts(), 0);
    }

    #[test]
    fn two_gt_flows_on_disjoint_slots_no_conflict() {
        // NI0 → NI3 and NI1 → NI3 share router 1→3 link (south). Offset
        // injections by one slot so their slots never collide.
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let p03 = topo.route(0, 3).unwrap();
        let p13 = topo.route(1, 3).unwrap();
        // NI0's flit needs one hop to reach router 1, so on the shared
        // router1→router3 link an NI0 flit injected in slot s lands in slot
        // s+2 while an NI1 flit injected in slot s' lands in slot s'+1.
        // Leaving one idle slot between the injections (s' = s+2) keeps the
        // shared link slots disjoint.
        for round in 0..8u64 {
            let w0 = gt_packet(p03.clone(), 0, &[round as u32, 1]);
            drive(&mut noc, 0, &w0);
            noc.run(3); // skip one slot
            let w1 = gt_packet(p13.clone(), 1, &[round as u32, 2]);
            drive(&mut noc, 1, &w1);
        }
        noc.run(40);
        assert_eq!(noc.gt_conflicts(), 0);
        let got = drain(&mut noc, 3);
        // 16 packets × 3 words.
        assert_eq!(got.len(), 48);
    }

    #[test]
    fn gt_conflict_detected_when_slots_collide() {
        // Both NIs inject at the same slot toward the same shared link.
        // NI0→NI3 path: E,S,eject — hits router1 south at slot s+1.
        // NI1→NI3 path: S,eject — hits router1 south at slot s+1 too if
        // NI1 injects at slot s. Guaranteed collision.
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let p03 = topo.route(0, 3).unwrap();
        let p13 = topo.route(1, 3).unwrap();
        // NI1 must inject one slot later so both headers arrive at router 1
        // in the same cycle window... simpler: inject both at cycle 0; the
        // NI0 header reaches router 1 at cycle 3, the NI1 header at cycle 0.
        // Delay NI1 by one slot to collide at router 1.
        let h0 = gt_packet(p03, 0, &[]);
        let h1 = gt_packet(p13, 1, &[]);
        noc.ni_link_mut(0).send(h0[0]);
        noc.tick();
        noc.run(2); // complete slot 0
        noc.ni_link_mut(1).send(h1[0]);
        noc.tick();
        noc.run(30);
        assert!(
            noc.gt_conflicts() > 0,
            "engineered slot collision must be detected"
        );
    }

    #[test]
    fn be_credits_replenish() {
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let init = noc.ni_link(0).be_credits();
        let path = topo.route(0, 3).unwrap();
        drive(&mut noc, 0, &be_packet(path, 0, &[1, 2, 3, 4]));
        noc.run(30);
        assert_eq!(
            noc.ni_link(0).be_credits(),
            init,
            "credits return after drain"
        );
    }

    #[test]
    fn be_backpressure_without_loss() {
        // Two senders saturate one destination link; all words must arrive,
        // none dropped, credits enforce bounded queues.
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let p03 = topo.route(0, 3).unwrap();
        let p13 = topo.route(1, 3).unwrap();
        let pkt0 = be_packet(p03, 0, &[1, 2, 3, 4, 5, 6, 7]);
        let pkt1 = be_packet(p13, 1, &[8, 9, 10, 11, 12, 13, 14]);
        let mut sent0 = 0usize;
        let mut sent1 = 0usize;
        let n_packets = 6;
        let mut received = Vec::new();
        for _ in 0..800 {
            {
                let link = noc.ni_link_mut(0);
                if sent0 < n_packets * pkt0.len() && !link.is_busy() && link.be_credits() > 0 {
                    link.send(pkt0[sent0 % pkt0.len()]);
                    sent0 += 1;
                }
            }
            {
                let link = noc.ni_link_mut(1);
                if sent1 < n_packets * pkt1.len() && !link.is_busy() && link.be_credits() > 0 {
                    link.send(pkt1[sent1 % pkt1.len()]);
                    sent1 += 1;
                }
            }
            noc.tick();
            received.extend(drain(&mut noc, 3));
        }
        assert_eq!(sent0, n_packets * pkt0.len());
        assert_eq!(sent1, n_packets * pkt1.len());
        assert_eq!(received.len(), sent0 + sent1, "no loss");
        assert_eq!(noc.be_overflows(), 0);
        // Worms arrive unfragmented per class: check header/payload framing.
        let mut expect_header = true;
        for w in &received {
            if expect_header {
                assert!(w.is_header());
            }
            expect_header = w.is_tail();
        }
        assert!(expect_header, "last word closes a packet");
    }

    #[test]
    fn gt_and_be_interleave_on_one_link_and_demux_cleanly() {
        let topo = Topology::mesh(2, 1, 1);
        let mut noc = Noc::new(&topo);
        let path = topo.route(0, 1).unwrap();
        // Start a long BE worm, then inject a GT flit mid-worm.
        let be = be_packet(path.clone(), 2, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let gt = gt_packet(path, 3, &[100, 200]);
        let mut bi = 0;
        let mut gi = 0;
        for c in 0..60u64 {
            let send_gt = (6..9).contains(&c) && gi < gt.len();
            let link = noc.ni_link_mut(0);
            if send_gt && !link.is_busy() {
                link.send(gt[gi]);
                gi += 1;
            } else if bi < be.len() && !link.is_busy() && link.be_credits() > 0 {
                link.send(be[bi]);
                bi += 1;
            }
            noc.tick();
        }
        let got = drain(&mut noc, 1);
        let gt_words: Vec<_> = got
            .iter()
            .filter(|w| w.class() == WordClass::Guaranteed)
            .collect();
        let be_words: Vec<_> = got
            .iter()
            .filter(|w| w.class() == WordClass::BestEffort)
            .collect();
        assert_eq!(gt_words.len(), 3);
        assert_eq!(be_words.len(), 9);
        assert_eq!(gt_words[1].word(), 100);
        assert_eq!(be_words[4].word(), 4);
        assert_eq!(noc.gt_conflicts(), 0);
    }

    #[test]
    fn stats_track_delivery() {
        let topo = Topology::mesh(2, 1, 1);
        let mut noc = Noc::new(&topo);
        let path = topo.route(0, 1).unwrap();
        drive(&mut noc, 0, &be_packet(path, 0, &[1]));
        noc.run(10);
        assert_eq!(noc.stats().delivered[WordClass::BestEffort.index()], 2);
        assert!(noc.stats().cycles > 0);
    }

    #[test]
    #[should_panic(expected = "already carries")]
    fn double_send_in_one_cycle_panics() {
        let topo = Topology::mesh(2, 1, 1);
        let mut noc = Noc::new(&topo);
        let w = LinkWord::header_only(0, WordClass::Guaranteed);
        noc.ni_link_mut(0).send(w);
        noc.ni_link_mut(0).send(w);
    }

    /// Builds the wire form of a packet over a (possibly multi-segment)
    /// route: header with the first segment, one continuation word per
    /// further segment, then payload.
    fn routed_packet(
        route: &crate::Route,
        qid: u8,
        class: WordClass,
        payload: &[u32],
    ) -> Vec<LinkWord> {
        let h = PacketHeader {
            path: route.header_segment().clone(),
            qid,
            credits: 0,
            flush: false,
        };
        let conts: Vec<u32> = route.continuation_words().collect();
        let mut words = Vec::new();
        if conts.is_empty() && payload.is_empty() {
            words.push(LinkWord::header_only(h.pack(), class));
            return words;
        }
        words.push(LinkWord::header(h.pack(), class));
        for (i, &c) in conts.iter().enumerate() {
            words.push(LinkWord::payload(
                c,
                class,
                payload.is_empty() && i + 1 == conts.len(),
            ));
        }
        for (i, &w) in payload.iter().enumerate() {
            words.push(LinkWord::payload(w, class, i + 1 == payload.len()));
        }
        words
    }

    #[test]
    fn be_two_level_route_crosses_8x8_mesh() {
        let topo = Topology::mesh(8, 8, 1);
        let mut noc = Noc::new(&topo);
        // Opposite corners: 15 hops, beyond any single header.
        assert!(topo.route(0, 63).is_err());
        let route = topo.route_any(0, 63).unwrap();
        assert_eq!(route.gateway_count(), 2);
        let init_credits = noc.ni_link(0).be_credits();
        drive(
            &mut noc,
            0,
            &routed_packet(&route, 6, WordClass::BestEffort, &[10, 20, 30]),
        );
        noc.run(120);
        let got = drain(&mut noc, 63);
        // Continuation words were consumed at the gateways: only header +
        // payload arrive, path fully consumed, qid intact.
        assert_eq!(got.len(), 4);
        assert!(got[0].is_header());
        let h = PacketHeader::unpack(got[0].word());
        assert_eq!(h.qid, 6);
        assert!(h.path.is_empty());
        assert_eq!(got[1].word(), 10);
        assert!(got[3].is_tail());
        assert_eq!(noc.be_overflows(), 0);
        assert_eq!(noc.gt_conflicts(), 0);
        // All link-level credits returned (incl. the two gateway-freed ones).
        assert_eq!(noc.ni_link(0).be_credits(), init_credits);
        assert!(Clocked::quiescent(&noc), "nothing left in flight");
    }

    #[test]
    fn gt_two_level_route_latency_adds_one_slot_per_gateway() {
        let topo = Topology::mesh(8, 8, 1);
        let mut noc = Noc::new(&topo);
        let route = topo.route_any(0, 63).unwrap();
        let words = routed_packet(&route, 1, WordClass::Guaranteed, &[100]);
        assert!(noc.at_slot_boundary());
        let start = noc.cycle();
        drive(&mut noc, 0, &words);
        let mut arrival = None;
        for _ in 0..200 {
            noc.tick();
            if noc.ni_link(63).pending() > 0 && arrival.is_none() {
                arrival = Some(noc.cycle() - 1);
            }
        }
        // 15 hops at one slot each, plus one whole (slot-aligned) slot per
        // gateway rewrite.
        assert_eq!(
            arrival,
            Some(start + (15 + route.gateway_count() as u64) * SLOT_WORDS)
        );
        let got = drain(&mut noc, 63);
        assert_eq!(got.len(), 2, "continuations consumed en route");
        assert_eq!(got[1].word(), 100);
        assert_eq!(noc.gt_conflicts(), 0);
        assert_eq!(noc.routers().iter().map(Router::gt_orphans).sum::<u64>(), 0);
    }

    #[test]
    fn two_level_routes_all_corner_pairs_16x16() {
        // Every corner-to-corner pair on a 16x16 mesh (31 hops, 5 segments).
        let topo = Topology::mesh(16, 16, 1);
        let mut noc = Noc::new(&topo);
        for (src, dst) in [(0usize, 255usize), (255, 0), (15, 240), (240, 15)] {
            let route = topo.route_any(src, dst).unwrap();
            assert_eq!(route.total_hops(), 31);
            drive(
                &mut noc,
                src,
                &routed_packet(&route, 3, WordClass::BestEffort, &[src as u32]),
            );
            noc.run(300);
            let got = drain(&mut noc, dst);
            assert_eq!(got.len(), 2, "{src}→{dst}");
            assert_eq!(got[1].word(), src as u32);
        }
        assert_eq!(noc.be_overflows(), 0);
    }

    #[test]
    fn ring_topology_delivers() {
        let topo = Topology::ring(4);
        let mut noc = Noc::new(&topo);
        let path = topo.route(0, 2).unwrap();
        drive(&mut noc, 0, &be_packet(path, 4, &[42]));
        noc.run(30);
        let got = drain(&mut noc, 2);
        assert_eq!(got.len(), 2);
        assert_eq!(PacketHeader::unpack(got[0].word()).qid, 4);
        assert_eq!(got[1].word(), 42);
    }
}
