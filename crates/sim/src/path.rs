//! Source-routing paths and their bit-level encoding in packet headers.
//!
//! The Æthereal header carries either an NI address (destination routing) or
//! a *path* (source routing); the prototype — and this reproduction — uses
//! source routing. A path is the sequence of router output ports the packet
//! takes, *including* the final local (NI-facing) port that ejects the packet
//! from the network.
//!
//! Each hop is encoded in [`HOP_BITS`] bits; every router consumes the
//! low-order hop entry and shifts the remaining path right, so the next
//! router always finds its own output port in the low bits (path-shifting
//! source routing, as in the Æthereal RTL).

/// A router output-port index (0..[`MAX_PORT`]).
///
/// For mesh topologies ports 0–3 are North/East/South/West and ports ≥ 4 are
/// local (NI-facing) ports.
pub type PortIdx = u8;

/// Bits encoding one hop in the packet header.
pub const HOP_BITS: u32 = 3;

/// Largest encodable output-port index (`2^HOP_BITS - 2`; the all-ones
/// pattern is reserved as the in-header terminator).
pub const MAX_PORT: PortIdx = (1 << HOP_BITS) as PortIdx - 2;

/// Reserved hop pattern marking "no more hops" inside the header field.
const HOP_END: u32 = (1 << HOP_BITS) - 1;

/// Maximum number of hops (router traversals, incl. ejection) a single
/// 32-bit header can encode. With 21 path bits and 3 bits per hop this is 7,
/// enough for the up-to-4×4 meshes of the Æthereal prototype era (worst case
/// 3 + 3 link hops + 1 ejection).
pub const MAX_HOPS: usize = 7;

/// Bits of the header dedicated to the path.
pub const PATH_BITS: u32 = HOP_BITS * MAX_HOPS as u32;

/// A source route: the ordered list of output ports, one per router visited,
/// ending with the local port that ejects into the destination NI.
///
/// # Example
///
/// ```
/// use noc_sim::Path;
/// // East (1), South (2), eject at local port 4.
/// let p = Path::new(&[1, 2, 4]).unwrap();
/// assert_eq!(p.hops(), 3);
/// let bits = p.encode();
/// assert_eq!(Path::decode(bits), p);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    hops: Vec<PortIdx>,
}

/// Error constructing a [`Path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// More than [`MAX_HOPS`] hops requested.
    TooLong {
        /// Number of hops requested.
        requested: usize,
    },
    /// A hop used a port index above [`MAX_PORT`].
    PortOutOfRange {
        /// The offending port index.
        port: PortIdx,
        /// Position of the offending hop.
        hop: usize,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::TooLong { requested } => {
                write!(
                    f,
                    "path of {requested} hops exceeds the {MAX_HOPS}-hop header limit"
                )
            }
            PathError::PortOutOfRange { port, hop } => {
                write!(
                    f,
                    "port {port} at hop {hop} exceeds the encodable maximum {MAX_PORT}"
                )
            }
        }
    }
}

impl std::error::Error for PathError {}

impl Path {
    /// Builds a path from explicit output ports.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::TooLong`] for more than [`MAX_HOPS`] hops and
    /// [`PathError::PortOutOfRange`] for ports above [`MAX_PORT`].
    pub fn new(ports: &[PortIdx]) -> Result<Self, PathError> {
        if ports.len() > MAX_HOPS {
            return Err(PathError::TooLong {
                requested: ports.len(),
            });
        }
        for (hop, &port) in ports.iter().enumerate() {
            if port > MAX_PORT {
                return Err(PathError::PortOutOfRange { port, hop });
            }
        }
        Ok(Path {
            hops: ports.to_vec(),
        })
    }

    /// The empty path (packet is already at its destination NI; never
    /// transported).
    pub fn empty() -> Self {
        Path { hops: Vec::new() }
    }

    /// Number of hops, including the final ejection hop.
    pub fn hops(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The output port taken at hop `i`.
    pub fn hop(&self, i: usize) -> Option<PortIdx> {
        self.hops.get(i).copied()
    }

    /// Iterates over the hops in traversal order.
    pub fn iter(&self) -> impl Iterator<Item = PortIdx> + '_ {
        self.hops.iter().copied()
    }

    /// Encodes the path into the low [`PATH_BITS`] bits of a word: hop 0 in
    /// the low-order bits, unused hops filled with the terminator pattern.
    pub fn encode(&self) -> u32 {
        let mut bits = 0u32;
        for slot in (0..MAX_HOPS).rev() {
            bits <<= HOP_BITS;
            bits |= match self.hops.get(slot) {
                Some(&p) => u32::from(p),
                None => HOP_END,
            };
        }
        bits
    }

    /// Decodes a path from the low [`PATH_BITS`] bits of a word; stops at the
    /// first terminator pattern.
    pub fn decode(mut bits: u32) -> Self {
        let mut hops = Vec::new();
        for _ in 0..MAX_HOPS {
            let hop = bits & HOP_END;
            if hop == HOP_END {
                break;
            }
            hops.push(hop as PortIdx);
            bits >>= HOP_BITS;
        }
        Path { hops }
    }

    /// The port a router should take for the low-order hop of an encoded
    /// path, or `None` on the terminator.
    pub fn peek_encoded(bits: u32) -> Option<PortIdx> {
        let hop = bits & HOP_END;
        if hop == HOP_END {
            None
        } else {
            Some(hop as PortIdx)
        }
    }

    /// Shifts an encoded path right by one hop (what a router does when
    /// forwarding a header), refilling the top hop slot with the terminator.
    pub fn shift_encoded(bits: u32) -> u32 {
        let mask = (1u32 << PATH_BITS) - 1;
        (((bits & mask) >> HOP_BITS) | (HOP_END << (PATH_BITS - HOP_BITS))) & mask
    }

    /// Shifts the path field of a *full packed header word* by one hop,
    /// preserving the credits/flush/qid fields above the path bits.
    pub fn shift_header(word: u32) -> u32 {
        let mask = (1u32 << PATH_BITS) - 1;
        (word & !mask) | Self::shift_encoded(word & mask)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{hop}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path_roundtrip() {
        let p = Path::empty();
        assert!(p.is_empty());
        assert_eq!(Path::decode(p.encode()), p);
        assert_eq!(Path::peek_encoded(p.encode()), None);
    }

    #[test]
    fn single_hop_roundtrip() {
        for port in 0..=MAX_PORT {
            let p = Path::new(&[port]).unwrap();
            assert_eq!(Path::decode(p.encode()), p);
            assert_eq!(Path::peek_encoded(p.encode()), Some(port));
        }
    }

    #[test]
    fn max_hops_roundtrip() {
        let hops: Vec<PortIdx> = (0..MAX_HOPS).map(|i| (i % 6) as PortIdx).collect();
        let p = Path::new(&hops).unwrap();
        assert_eq!(p.hops(), MAX_HOPS);
        assert_eq!(Path::decode(p.encode()), p);
    }

    #[test]
    fn too_long_rejected() {
        let hops = vec![0u8; MAX_HOPS + 1];
        assert_eq!(
            Path::new(&hops),
            Err(PathError::TooLong {
                requested: MAX_HOPS + 1
            })
        );
    }

    #[test]
    fn out_of_range_port_rejected() {
        assert_eq!(
            Path::new(&[0, 7]),
            Err(PathError::PortOutOfRange { port: 7, hop: 1 })
        );
    }

    #[test]
    fn shift_consumes_one_hop() {
        let p = Path::new(&[1, 2, 4]).unwrap();
        let bits = p.encode();
        assert_eq!(Path::peek_encoded(bits), Some(1));
        let bits = Path::shift_encoded(bits);
        assert_eq!(Path::peek_encoded(bits), Some(2));
        let bits = Path::shift_encoded(bits);
        assert_eq!(Path::peek_encoded(bits), Some(4));
        let bits = Path::shift_encoded(bits);
        assert_eq!(Path::peek_encoded(bits), None);
    }

    #[test]
    fn shift_of_empty_stays_empty() {
        let bits = Path::empty().encode();
        assert_eq!(Path::shift_encoded(bits), bits);
    }

    #[test]
    fn encode_fits_in_path_bits() {
        let hops: Vec<PortIdx> = (0..MAX_HOPS).map(|_| MAX_PORT).collect();
        let p = Path::new(&hops).unwrap();
        assert!(p.encode() < (1 << PATH_BITS));
    }

    #[test]
    fn display_formats_hops() {
        let p = Path::new(&[1, 2, 4]).unwrap();
        assert_eq!(p.to_string(), "[1→2→4]");
    }
}
