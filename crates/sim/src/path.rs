//! Source-routing paths and their bit-level encoding in packet headers.
//!
//! The Æthereal header carries either an NI address (destination routing) or
//! a *path* (source routing); the prototype — and this reproduction — uses
//! source routing. A path is the sequence of router output ports the packet
//! takes, *including* the final local (NI-facing) port that ejects the packet
//! from the network.
//!
//! Each hop is encoded in [`HOP_BITS`] bits; every router consumes the
//! low-order hop entry and shifts the remaining path right, so the next
//! router always finds its own output port in the low bits (path-shifting
//! source routing, as in the Æthereal RTL).
//!
//! ## Two-level (segmented) routes
//!
//! A single header encodes at most [`MAX_HOPS`] hops, which caps source
//! routes at the 4×4 meshes of the paper's era. Larger meshes use a
//! [`Route`]: an ordered list of path *segments*, each individually within
//! the [`MAX_HOPS`] × [`HOP_BITS`] header encoding. On the wire the first
//! segment travels in the packet header as usual, and every further segment
//! rides in a *continuation word* directly behind the header. A non-final
//! segment deliberately ends **at** an intermediate *gateway* router with
//! its path exhausted; the gateway holds the header for one cycle, consumes
//! the continuation word, and re-emits the header with the next segment
//! installed (see `Router`). Packets whose whole route fits one header
//! ([`Route::is_single`]) never exhaust mid-network, so pre-existing ≤
//! [`MAX_HOPS`]-hop traffic is bit-identical to the seed encoding.

/// A router output-port index (0..[`MAX_PORT`]).
///
/// For mesh topologies ports 0–3 are North/East/South/West and ports ≥ 4 are
/// local (NI-facing) ports.
pub type PortIdx = u8;

/// Bits encoding one hop in the packet header.
pub const HOP_BITS: u32 = 3;

/// Largest encodable output-port index (`2^HOP_BITS - 2`; the all-ones
/// pattern is reserved as the in-header terminator).
pub const MAX_PORT: PortIdx = (1 << HOP_BITS) as PortIdx - 2;

/// Reserved hop pattern marking "no more hops" inside the header field.
const HOP_END: u32 = (1 << HOP_BITS) - 1;

/// Maximum number of hops (router traversals, incl. ejection) a single
/// 32-bit header can encode. With 21 path bits and 3 bits per hop this is 7,
/// enough for the up-to-4×4 meshes of the Æthereal prototype era (worst case
/// 3 + 3 link hops + 1 ejection).
pub const MAX_HOPS: usize = 7;

/// Bits of the header dedicated to the path.
pub const PATH_BITS: u32 = HOP_BITS * MAX_HOPS as u32;

/// A source route: the ordered list of output ports, one per router visited,
/// ending with the local port that ejects into the destination NI.
///
/// # Example
///
/// ```
/// use noc_sim::Path;
/// // East (1), South (2), eject at local port 4.
/// let p = Path::new(&[1, 2, 4]).unwrap();
/// assert_eq!(p.hops(), 3);
/// let bits = p.encode();
/// assert_eq!(Path::decode(bits), p);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    hops: Vec<PortIdx>,
}

/// Error constructing a [`Path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// More than [`MAX_HOPS`] hops requested.
    TooLong {
        /// Number of hops requested.
        requested: usize,
    },
    /// A hop used a port index above [`MAX_PORT`].
    PortOutOfRange {
        /// The offending port index.
        port: PortIdx,
        /// Position of the offending hop.
        hop: usize,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::TooLong { requested } => {
                write!(
                    f,
                    "path of {requested} hops exceeds the {MAX_HOPS}-hop header limit"
                )
            }
            PathError::PortOutOfRange { port, hop } => {
                write!(
                    f,
                    "port {port} at hop {hop} exceeds the encodable maximum {MAX_PORT}"
                )
            }
        }
    }
}

impl std::error::Error for PathError {}

impl Path {
    /// Builds a path from explicit output ports.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::TooLong`] for more than [`MAX_HOPS`] hops and
    /// [`PathError::PortOutOfRange`] for ports above [`MAX_PORT`].
    pub fn new(ports: &[PortIdx]) -> Result<Self, PathError> {
        if ports.len() > MAX_HOPS {
            return Err(PathError::TooLong {
                requested: ports.len(),
            });
        }
        for (hop, &port) in ports.iter().enumerate() {
            if port > MAX_PORT {
                return Err(PathError::PortOutOfRange { port, hop });
            }
        }
        Ok(Path {
            hops: ports.to_vec(),
        })
    }

    /// The empty path (packet is already at its destination NI; never
    /// transported).
    pub fn empty() -> Self {
        Path { hops: Vec::new() }
    }

    /// Number of hops, including the final ejection hop.
    pub fn hops(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The output port taken at hop `i`.
    pub fn hop(&self, i: usize) -> Option<PortIdx> {
        self.hops.get(i).copied()
    }

    /// Iterates over the hops in traversal order.
    pub fn iter(&self) -> impl Iterator<Item = PortIdx> + '_ {
        self.hops.iter().copied()
    }

    /// Encodes the path into the low [`PATH_BITS`] bits of a word: hop 0 in
    /// the low-order bits, unused hops filled with the terminator pattern.
    pub fn encode(&self) -> u32 {
        let mut bits = 0u32;
        for slot in (0..MAX_HOPS).rev() {
            bits <<= HOP_BITS;
            bits |= match self.hops.get(slot) {
                Some(&p) => u32::from(p),
                None => HOP_END,
            };
        }
        bits
    }

    /// Decodes a path from the low [`PATH_BITS`] bits of a word; stops at the
    /// first terminator pattern.
    pub fn decode(mut bits: u32) -> Self {
        let mut hops = Vec::new();
        for _ in 0..MAX_HOPS {
            let hop = bits & HOP_END;
            if hop == HOP_END {
                break;
            }
            hops.push(hop as PortIdx);
            bits >>= HOP_BITS;
        }
        Path { hops }
    }

    /// The port a router should take for the low-order hop of an encoded
    /// path, or `None` on the terminator.
    pub fn peek_encoded(bits: u32) -> Option<PortIdx> {
        let hop = bits & HOP_END;
        if hop == HOP_END {
            None
        } else {
            Some(hop as PortIdx)
        }
    }

    /// Shifts an encoded path right by one hop (what a router does when
    /// forwarding a header), refilling the top hop slot with the terminator.
    pub fn shift_encoded(bits: u32) -> u32 {
        let mask = (1u32 << PATH_BITS) - 1;
        (((bits & mask) >> HOP_BITS) | (HOP_END << (PATH_BITS - HOP_BITS))) & mask
    }

    /// Shifts the path field of a *full packed header word* by one hop,
    /// preserving the credits/flush/qid fields above the path bits.
    pub fn shift_header(word: u32) -> u32 {
        let mask = (1u32 << PATH_BITS) - 1;
        (word & !mask) | Self::shift_encoded(word & mask)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{hop}")?;
        }
        write!(f, "]")
    }
}

/// Maximum number of segments a [`Route`] may carry: the header segment
/// plus one continuation word per `PATH_EXT` register of the NI channel
/// (see `aethereal-ni::kernel::regs`). Five segments of [`MAX_HOPS`] hops
/// cover any-pair routes on meshes up to 18×18.
pub const MAX_ROUTE_SEGMENTS: usize = 5;

/// A source route of one or more [`Path`] segments.
///
/// The first segment is what the packet header carries; each further
/// segment is installed by a gateway router from a continuation word (see
/// the module docs). Invariants enforced at construction: at most
/// [`MAX_ROUTE_SEGMENTS`] segments, every segment within [`MAX_HOPS`], no
/// empty segment except a single empty route.
///
/// # Example
///
/// ```
/// use noc_sim::{Route, MAX_HOPS};
/// // A 10-hop route splits greedily into 7 + 3.
/// let hops: Vec<u8> = [1u8, 1, 1, 1, 1, 1, 1, 2, 2, 4].to_vec();
/// let r = Route::from_hops(&hops).unwrap();
/// assert_eq!(r.segments().len(), 2);
/// assert_eq!(r.total_hops(), 10);
/// assert!(!r.is_single());
/// // A short route stays a single segment, bit-identical to a plain Path.
/// let short = Route::from_hops(&[1, 2, 4]).unwrap();
/// assert!(short.is_single());
/// assert_eq!(short.header_segment().encode(),
///            noc_sim::Path::new(&[1, 2, 4]).unwrap().encode());
/// assert!(hops.len() > MAX_HOPS);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    segments: Vec<Path>,
}

/// Error constructing a [`Route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteBuildError {
    /// A segment violated the per-path encoding limits.
    Segment(PathError),
    /// More than [`MAX_ROUTE_SEGMENTS`] segments.
    TooManySegments {
        /// Segments requested.
        requested: usize,
    },
    /// A non-final segment was empty (a gateway would have nothing to
    /// forward toward).
    EmptySegment {
        /// Index of the offending segment.
        index: usize,
    },
}

impl std::fmt::Display for RouteBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteBuildError::Segment(e) => write!(f, "{e}"),
            RouteBuildError::TooManySegments { requested } => write!(
                f,
                "route of {requested} segments exceeds the {MAX_ROUTE_SEGMENTS}-segment limit"
            ),
            RouteBuildError::EmptySegment { index } => {
                write!(f, "segment {index} of a multi-segment route is empty")
            }
        }
    }
}

impl std::error::Error for RouteBuildError {}

impl From<PathError> for RouteBuildError {
    fn from(e: PathError) -> Self {
        RouteBuildError::Segment(e)
    }
}

impl Route {
    /// Wraps a single path (a route that fits one header).
    pub fn single(path: Path) -> Self {
        Route {
            segments: vec![path],
        }
    }

    /// Builds a route from explicit segments.
    ///
    /// # Errors
    ///
    /// See [`RouteBuildError`].
    pub fn from_segments(segments: Vec<Path>) -> Result<Self, RouteBuildError> {
        if segments.len() > MAX_ROUTE_SEGMENTS {
            return Err(RouteBuildError::TooManySegments {
                requested: segments.len(),
            });
        }
        if segments.is_empty() {
            return Ok(Route::single(Path::empty()));
        }
        if segments.len() > 1 {
            if let Some(index) = segments.iter().position(Path::is_empty) {
                return Err(RouteBuildError::EmptySegment { index });
            }
        }
        Ok(Route { segments })
    }

    /// Builds a route from a flat hop list, splitting greedily into
    /// [`MAX_HOPS`]-hop segments (the split points become gateway rewrites).
    /// Topology-aware callers should prefer `Topology::route_any`, which
    /// aligns split points with declared region gateways.
    ///
    /// # Errors
    ///
    /// See [`RouteBuildError`].
    pub fn from_hops(hops: &[PortIdx]) -> Result<Self, RouteBuildError> {
        let mut segments = Vec::with_capacity(hops.len().div_ceil(MAX_HOPS).max(1));
        if hops.is_empty() {
            return Ok(Route::single(Path::empty()));
        }
        for chunk in hops.chunks(MAX_HOPS) {
            segments.push(Path::new(chunk)?);
        }
        Route::from_segments(segments)
    }

    /// The segments, header segment first.
    pub fn segments(&self) -> &[Path] {
        &self.segments
    }

    /// The segment carried in the packet header.
    pub fn header_segment(&self) -> &Path {
        &self.segments[0]
    }

    /// Whether the route fits a single header (no continuation words, no
    /// gateway rewrites — the seed wire format).
    pub fn is_single(&self) -> bool {
        self.segments.len() == 1
    }

    /// Number of gateway rewrites en route (segments after the first).
    pub fn gateway_count(&self) -> usize {
        self.segments.len() - 1
    }

    /// Total hops across all segments (router traversals incl. ejection).
    pub fn total_hops(&self) -> usize {
        self.segments.iter().map(Path::hops).sum()
    }

    /// Iterates over all hops in traversal order, ignoring segmentation.
    pub fn iter_hops(&self) -> impl Iterator<Item = PortIdx> + '_ {
        self.segments.iter().flat_map(Path::iter)
    }

    /// The encoded continuation words, in wire order (one per segment after
    /// the first; each is the segment's [`Path::encode`] in the low
    /// [`PATH_BITS`] bits).
    pub fn continuation_words(&self) -> impl Iterator<Item = u32> + '_ {
        self.segments[1..].iter().map(Path::encode)
    }
}

impl std::fmt::Display for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, "⇒")?;
            }
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path_roundtrip() {
        let p = Path::empty();
        assert!(p.is_empty());
        assert_eq!(Path::decode(p.encode()), p);
        assert_eq!(Path::peek_encoded(p.encode()), None);
    }

    #[test]
    fn single_hop_roundtrip() {
        for port in 0..=MAX_PORT {
            let p = Path::new(&[port]).unwrap();
            assert_eq!(Path::decode(p.encode()), p);
            assert_eq!(Path::peek_encoded(p.encode()), Some(port));
        }
    }

    #[test]
    fn max_hops_roundtrip() {
        let hops: Vec<PortIdx> = (0..MAX_HOPS).map(|i| (i % 6) as PortIdx).collect();
        let p = Path::new(&hops).unwrap();
        assert_eq!(p.hops(), MAX_HOPS);
        assert_eq!(Path::decode(p.encode()), p);
    }

    #[test]
    fn too_long_rejected() {
        let hops = vec![0u8; MAX_HOPS + 1];
        assert_eq!(
            Path::new(&hops),
            Err(PathError::TooLong {
                requested: MAX_HOPS + 1
            })
        );
    }

    #[test]
    fn out_of_range_port_rejected() {
        assert_eq!(
            Path::new(&[0, 7]),
            Err(PathError::PortOutOfRange { port: 7, hop: 1 })
        );
    }

    #[test]
    fn shift_consumes_one_hop() {
        let p = Path::new(&[1, 2, 4]).unwrap();
        let bits = p.encode();
        assert_eq!(Path::peek_encoded(bits), Some(1));
        let bits = Path::shift_encoded(bits);
        assert_eq!(Path::peek_encoded(bits), Some(2));
        let bits = Path::shift_encoded(bits);
        assert_eq!(Path::peek_encoded(bits), Some(4));
        let bits = Path::shift_encoded(bits);
        assert_eq!(Path::peek_encoded(bits), None);
    }

    #[test]
    fn shift_of_empty_stays_empty() {
        let bits = Path::empty().encode();
        assert_eq!(Path::shift_encoded(bits), bits);
    }

    #[test]
    fn encode_fits_in_path_bits() {
        let hops: Vec<PortIdx> = (0..MAX_HOPS).map(|_| MAX_PORT).collect();
        let p = Path::new(&hops).unwrap();
        assert!(p.encode() < (1 << PATH_BITS));
    }

    #[test]
    fn display_formats_hops() {
        let p = Path::new(&[1, 2, 4]).unwrap();
        assert_eq!(p.to_string(), "[1→2→4]");
    }

    #[test]
    fn route_single_segment_matches_path_encoding() {
        let r = Route::from_hops(&[1, 2, 4]).unwrap();
        assert!(r.is_single());
        assert_eq!(r.gateway_count(), 0);
        assert_eq!(
            r.header_segment().encode(),
            Path::new(&[1, 2, 4]).unwrap().encode()
        );
        assert_eq!(r.continuation_words().count(), 0);
    }

    #[test]
    fn route_greedy_split_preserves_hops() {
        let hops: Vec<PortIdx> = (0..17).map(|i| (i % 5) as PortIdx).collect();
        let r = Route::from_hops(&hops).unwrap();
        assert_eq!(r.segments().len(), 3);
        assert_eq!(r.total_hops(), 17);
        assert_eq!(r.iter_hops().collect::<Vec<_>>(), hops);
        assert!(r.segments()[..2].iter().all(|s| s.hops() == MAX_HOPS));
    }

    #[test]
    fn route_empty_hops_is_single_empty() {
        let r = Route::from_hops(&[]).unwrap();
        assert!(r.is_single());
        assert!(r.header_segment().is_empty());
    }

    #[test]
    fn route_rejects_empty_middle_segment() {
        let err = Route::from_segments(vec![
            Path::new(&[1]).unwrap(),
            Path::empty(),
            Path::new(&[4]).unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err, RouteBuildError::EmptySegment { index: 1 });
    }

    #[test]
    fn route_rejects_too_many_segments() {
        let hops = vec![0u8; MAX_ROUTE_SEGMENTS * MAX_HOPS + 1];
        assert!(matches!(
            Route::from_hops(&hops),
            Err(RouteBuildError::TooManySegments { .. })
        ));
    }

    #[test]
    fn route_continuation_words_are_segment_encodings() {
        let hops: Vec<PortIdx> = (0..10).map(|_| 2).collect();
        let r = Route::from_hops(&hops).unwrap();
        let conts: Vec<u32> = r.continuation_words().collect();
        assert_eq!(conts.len(), 1);
        assert_eq!(conts[0], Path::new(&[2, 2, 2]).unwrap().encode());
    }

    #[test]
    fn route_display_shows_segments() {
        let r = Route::from_hops(&[1, 1, 1, 1, 1, 1, 1, 2, 4]).unwrap();
        assert_eq!(r.to_string(), "[1→1→1→1→1→1→1]⇒[2→4]");
    }
}
