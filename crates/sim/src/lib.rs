//! # noc-sim — cycle-level network-on-chip substrate for the Æthereal reproduction
//!
//! This crate implements the network that the Æthereal network interface (NI)
//! of the DATE 2004 paper talks to: routers, links and topologies, at the
//! granularity of one 32-bit word per link per cycle.
//!
//! The router model follows the combined guaranteed-throughput / best-effort
//! (GT/BE) router of Rijpkema et al. (DATE 2003), which is the substrate the
//! paper's NI is designed against:
//!
//! * **GT traffic** travels on pipelined time-division-multiplexed circuits.
//!   Time is divided into *slots* of [`SLOT_WORDS`] words (one flit). A GT
//!   packet injected in slot `s` occupies slot `s + h` on the link after hop
//!   `h`. Routers forward GT words with a fixed one-slot latency and never
//!   buffer them; the slot allocator (see the `aethereal-cfg` crate) must
//!   guarantee contention-freedom, and the router *checks* this invariant at
//!   run time ([`Noc::gt_conflicts`]).
//! * **BE traffic** is wormhole-routed with per-output round-robin
//!   arbitration, link-level credit-based flow control, and strictly lower
//!   priority than GT: a BE worm simply yields any cycle in which a GT word
//!   is due on the same output.
//!
//! Both classes share one physical link; every word is tagged with its class
//! ([`WordClass`]) so that the receiving side can demultiplex the (at most
//! one) in-flight GT worm from the (at most one) in-flight BE worm, exactly
//! like the type bits on the Æthereal link.
//!
//! The crate deliberately contains **no NI logic**: the network interface —
//! the paper's actual contribution — lives in the `aethereal-ni` crate and
//! attaches to [`Noc`] endpoints through [`NiLink`] handles.
//!
//! ## Example
//!
//! ```
//! use noc_sim::{Noc, Topology, LinkWord, WordClass, PacketHeader};
//!
//! // A 2x2 mesh with one NI per router.
//! let topo = Topology::mesh(2, 2, 1);
//! let mut noc = Noc::new(&topo);
//!
//! // Source route from NI 0 (router 0) to NI 3 (router 3): East then South,
//! // then eject to the local port.
//! let path = topo.route(0, 3).expect("route exists");
//! let header = PacketHeader { path, qid: 2, credits: 5, flush: false };
//!
//! // One word per cycle enters the link.
//! noc.ni_link_mut(0).send(LinkWord::header(header.pack(), WordClass::BestEffort));
//! noc.tick();
//! noc.ni_link_mut(0).send(LinkWord::payload(0xDEAD_BEEF, WordClass::BestEffort, true));
//! for _ in 0..20 { noc.tick(); }
//! let got = noc.ni_link_mut(3).recv().expect("header arrives");
//! assert!(got.is_header());
//! assert_eq!(PacketHeader::unpack(got.word()).qid, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod ff;
pub mod header;
pub mod link;
pub mod noc;
pub mod path;
pub mod persist;
pub mod ring;
pub mod rng;
pub mod router;
pub mod shard;
pub mod stats;
pub mod sync;
pub mod topology;
pub mod word;

pub use engine::{ClockDomain, Clocked, ClockedWith, Engine};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultReport, FaultState, SuspectLink};
pub use ff::{FastForwardable, FfOutcome, FfStats, FfVisit};
pub use header::PacketHeader;
pub use link::{LinkId, LinkState};
pub use noc::{NiLink, Noc, NocConfig};
pub use path::{Path, PortIdx, Route, RouteBuildError, MAX_HOPS, MAX_ROUTE_SEGMENTS};
pub use persist::{Persist, PersistError, PersistVisit, StateLoader, StateSaver};
pub use ring::Ring;
pub use rng::Rng64;
pub use router::Router;
pub use shard::{NocShard, Partition, ShardRegion, ShardRunner};
pub use stats::{LinkStats, NocStats};
pub use sync::{StdSync, SyncFamily};
pub use topology::{
    Endpoint, NiId, RegionError, Regions, RouteError, RouteLink, RouterId, Topology, TopologyKind,
};
pub use word::{LinkWord, Word, WordClass, FLIT_WORDS, SLOT_WORDS};
