//! Analytical GT fast-forward: periodic steady-state certification and
//! closed-form extrapolation behind the engine seam.
//!
//! The paper's guaranteed-throughput class is deterministic by construction
//! — slot tables plus fixed per-hop latency — so a fabric carrying only
//! contention-free GT streams revisits the same control state every
//! calendar rotation. This module turns that property into a second
//! backend: instead of ticking through a predictable phase, the fabric is
//! *probed* for two real rotations, certified periodic against a structural
//! state digest, and then advanced `k` whole rotations in one arithmetic
//! step — flit positions, calendar phase, FIFO occupancies, credits and
//! statistics all reconstructed exactly.
//!
//! The contract is deliberately conservative — **certify, then
//! extrapolate**:
//!
//! 1. The fabric walks its complete wire-visible state through [`FfVisit`]
//!    (one traversal, reused for capture and for the jump), classifying
//!    every field as [`exact`](FfVisit::exact) (control state that must
//!    repeat exactly each period), [`stamp`](FfVisit::stamp) (an absolute
//!    cycle number that slides with time), [`counter`](FfVisit::counter)
//!    (a 64-bit statistic advancing by a fixed amount per period) or
//!    [`value`](FfVisit::value) (a 32-bit payload word advancing by a
//!    fixed increment per period — constant payloads, and in particular
//!    route-continuation words, are the zero-increment special case).
//!    State the traversal cannot prove periodic calls
//!    [`reject`](FfVisit::reject).
//! 2. Two probe rotations (real ticks — always safe) yield three digests;
//!    the state is certified periodic only if every item repeats its
//!    per-period delta across both rotations ([`periodic_deltas`]).
//! 3. The certified deltas are applied `k` times in a single walk
//!    ([`FfApply`]). This is exact, not approximate: the exact items *are*
//!    the control state that drives the dynamics, so identical control
//!    state at `t` and `t + R` makes the whole trajectory `R`-periodic,
//!    and linear extrapolation of the sliding items reproduces the state
//!    the cycle-accurate backend would have reached at `t + kR`.
//!
//! Stamps are compared *relative to the capture cycle* (a wrapping
//! difference, so spent stamps keep their distinct negative offsets) and
//! certified only if the offset is identical at every period boundary —
//! the entry holding the stamp recycles with the period, its timestamp
//! sliding in lockstep with time. The jump then shifts every certified
//! stamp by the jumped cycles, exactly reproducing the stamp the ticked
//! trajectory would carry. A *frozen* timestamp (an entry parked across
//! whole periods with a constant absolute stamp) drifts one period of
//! relative offset per rotation and fails certification — conservatively
//! declining rather than guessing whether it may slide.
//!
//! Anything non-trivial — BE traffic, threshold gates, blocking, an
//! aperiodic source — either fails the structural pre-gates of the
//! [`FastForwardable`] implementor or breaks the delta certification, and
//! the attempt falls back to the cycle-accurate backend. The acceptance
//! bar is bit-identical state, never approximate stats.

use crate::engine::{Clocked, Engine};
use crate::word::{LinkWord, SLOT_WORDS};

/// Largest period (in base cycles) worth certifying: beyond this the probe
/// cost (two full rotations of real ticks) stops paying for itself.
pub const FF_MAX_PERIOD: u64 = 4096;

/// Minimum cool-down (in base cycles) after a declined fast-forward
/// attempt before the next one. Declines are cheap but not free (the
/// structural pre-gates scan the fabric), so a fabric that keeps declining
/// — a mixed GT/BE workload — must not pay the scan on every cycle.
pub const FF_COOLDOWN: u64 = 256;

/// Result of one [`FastForwardable::fast_forward`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FfOutcome {
    /// Total cycles the fabric advanced (probe ticks + the jump). Zero
    /// means the attempt was declined before any state change.
    pub advanced: u64,
    /// Cycles covered by the arithmetic jump (`advanced - jumped` were
    /// real probe ticks). Zero means no extrapolation happened.
    pub jumped: u64,
}

impl FfOutcome {
    /// An attempt declined before any state change.
    pub const DECLINED: FfOutcome = FfOutcome {
        advanced: 0,
        jumped: 0,
    };
}

/// Cumulative fast-forward activity of a fabric (exposed by systems that
/// embed the backend, summed across shard regions by sharded drivers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FfStats {
    /// Certified extrapolations applied.
    pub jumps: u64,
    /// Cycles covered arithmetically instead of by ticking.
    pub cycles_jumped: u64,
}

impl FfStats {
    /// Accumulates another fabric's counters (shard-region roll-up).
    pub fn merge(&mut self, other: &FfStats) {
        self.jumps += other.jumps;
        self.cycles_jumped += other.cycles_jumped;
    }
}

/// A fabric that can attempt an analytical fast-forward.
///
/// `fast_forward(max)` advances the fabric by at most `max` cycles — by
/// real ticks, an arithmetic jump, or both — and reports what it did. The
/// implementor owns all eligibility checking; when the state is not
/// provably periodic it must either decline outright
/// ([`FfOutcome::DECLINED`]) or advance by real ticks only (`jumped == 0`),
/// never extrapolate. [`Engine::run_ff`] is the driving loop.
pub trait FastForwardable: Clocked {
    /// Attempts to advance by up to `max` cycles; see the trait docs.
    fn fast_forward(&mut self, max: u64) -> FfOutcome;
}

/// The state-classification visitor: one traversal of a fabric's complete
/// wire-visible state, used both to capture digests and to apply the jump.
///
/// The traversal must be deterministic: same state, same sequence of
/// calls. Mutable access for `stamp`/`counter`/`value` is what lets the
/// identical walk replay the certified deltas in the apply pass.
pub trait FfVisit {
    /// Control state: must repeat exactly every period (queue lengths,
    /// header words, routes, credit counters, calendar occupancy, …).
    fn exact(&mut self, v: u64);

    /// An absolute cycle number that slides with time (a FIFO word's
    /// visibility stamp, a calendar event's due cycle). Certified when its
    /// offset to the capture cycle is constant across periods; the jump
    /// shifts it by the jumped cycles.
    fn stamp(&mut self, v: &mut u64);

    /// A monotone 64-bit statistic advancing by a fixed (wrapping) amount
    /// per period.
    fn counter(&mut self, v: &mut u64);

    /// A 32-bit data word advancing by a fixed (wrapping) increment per
    /// period — position `i` of a steady stream carries `w + Δ` one period
    /// after it carried `w`. Constants are the `Δ = 0` case.
    fn value(&mut self, v: &mut u32);

    /// State this analysis does not cover (an IP holding an unbounded
    /// history, a non-arithmetic accumulator): poisons the attempt.
    fn reject(&mut self);
}

/// One classified state item (digest form). `Stamp` stores the cycle
/// *relative* to the capture cycle as a wrapping difference (spent stamps
/// keep distinct negative offsets) — see the module docs for why only a
/// constant relative offset certifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FfItem {
    Exact(u64),
    Stamp(u64),
    Counter(u64),
    Value(u32),
}

impl FfItem {
    fn kind(self) -> u8 {
        match self {
            FfItem::Exact(_) => 0,
            FfItem::Stamp(_) => 1,
            FfItem::Counter(_) => 2,
            FfItem::Value(_) => 3,
        }
    }
}

/// A captured state digest: the classified item sequence of one
/// [`FfVisit`] walk at a fixed cycle.
#[derive(Debug)]
pub struct FfDigest {
    now: u64,
    items: Vec<FfItem>,
    rejected: bool,
}

impl FfDigest {
    /// Creates an empty digest capturing at cycle `now`.
    pub fn new(now: u64) -> Self {
        FfDigest {
            now,
            items: Vec::new(),
            rejected: false,
        }
    }

    /// Whether any visited component rejected the attempt.
    pub fn rejected(&self) -> bool {
        self.rejected
    }
}

impl FfVisit for FfDigest {
    fn exact(&mut self, v: u64) {
        self.items.push(FfItem::Exact(v));
    }

    fn stamp(&mut self, v: &mut u64) {
        self.items.push(FfItem::Stamp(v.wrapping_sub(self.now)));
    }

    fn counter(&mut self, v: &mut u64) {
        self.items.push(FfItem::Counter(*v));
    }

    fn value(&mut self, v: &mut u32) {
        self.items.push(FfItem::Value(*v));
    }

    fn reject(&mut self) {
        self.rejected = true;
    }
}

/// Certified per-period deltas: the proof object produced by
/// [`periodic_deltas`] and consumed by [`FfApply`]. For `Exact` and
/// `Stamp` items the payload re-states the certified value (structure
/// bookkeeping); for `Counter` and `Value` it is the per-period increment.
#[derive(Debug)]
pub struct FfDeltas {
    items: Vec<FfItem>,
    /// The certified period in base cycles.
    period: u64,
}

/// Certifies periodicity from three equally spaced digests (`d1` one
/// period after `d0`, `d2` one period after `d1`) and derives the
/// per-period deltas.
///
/// Returns `None` — fall back to ticking — unless every structural
/// condition holds: no rejections, identical item count and kind sequence,
/// `Exact` and `Stamp` items equal across all three captures, and
/// `Counter`/`Value` items advancing by the same (wrapping) delta in both
/// intervals.
pub fn periodic_deltas(d0: &FfDigest, d1: &FfDigest, d2: &FfDigest) -> Option<FfDeltas> {
    if d0.rejected || d1.rejected || d2.rejected {
        return None;
    }
    if d0.items.len() != d1.items.len() || d1.items.len() != d2.items.len() {
        return None;
    }
    let period = d1.now.checked_sub(d0.now)?;
    if period == 0 || d2.now.checked_sub(d1.now)? != period {
        return None;
    }
    let mut items = Vec::with_capacity(d0.items.len());
    for ((&a, &b), &c) in d0.items.iter().zip(&d1.items).zip(&d2.items) {
        if a.kind() != b.kind() || b.kind() != c.kind() {
            return None;
        }
        let item = match (a, b, c) {
            (FfItem::Exact(x), FfItem::Exact(y), FfItem::Exact(z)) => {
                if x != y || y != z {
                    return None;
                }
                FfItem::Exact(x)
            }
            (FfItem::Stamp(x), FfItem::Stamp(y), FfItem::Stamp(z)) => {
                if x != y || y != z {
                    return None;
                }
                FfItem::Stamp(x)
            }
            (FfItem::Counter(x), FfItem::Counter(y), FfItem::Counter(z)) => {
                let d01 = y.wrapping_sub(x);
                if z.wrapping_sub(y) != d01 {
                    return None;
                }
                FfItem::Counter(d01)
            }
            (FfItem::Value(x), FfItem::Value(y), FfItem::Value(z)) => {
                let d01 = y.wrapping_sub(x);
                if z.wrapping_sub(y) != d01 {
                    return None;
                }
                FfItem::Value(d01)
            }
            _ => unreachable!("kinds checked above"),
        };
        items.push(item);
    }
    Some(FfDeltas { items, period })
}

/// The jump applier: replays the certified deltas `k` times in one
/// [`FfVisit`] walk over the same state that produced the last digest.
///
/// The walk is deterministic, so the item sequence matches the deltas by
/// construction; a mismatch is a traversal bug, checked via
/// [`FfApply::matched`] (and debug assertions).
#[derive(Debug)]
pub struct FfApply<'a> {
    deltas: &'a FfDeltas,
    /// Number of periods to jump.
    k: u64,
    i: usize,
    mismatched: bool,
}

impl<'a> FfApply<'a> {
    /// Creates an applier jumping `k` periods.
    pub fn new(deltas: &'a FfDeltas, k: u64) -> Self {
        FfApply {
            deltas,
            k,
            i: 0,
            mismatched: false,
        }
    }

    /// The cycles covered by the jump.
    pub fn jump(&self) -> u64 {
        self.k * self.deltas.period
    }

    /// Whether the walk consumed exactly the certified item sequence.
    pub fn matched(&self) -> bool {
        !self.mismatched && self.i == self.deltas.items.len()
    }

    fn next(&mut self, kind: u8) -> Option<FfItem> {
        match self.deltas.items.get(self.i) {
            Some(&item) if item.kind() == kind => {
                self.i += 1;
                Some(item)
            }
            _ => {
                debug_assert!(false, "ff apply walk diverged from certified digest");
                self.mismatched = true;
                None
            }
        }
    }
}

impl FfVisit for FfApply<'_> {
    fn exact(&mut self, _v: u64) {
        let _ = self.next(0);
    }

    fn stamp(&mut self, v: &mut u64) {
        if self.next(1).is_some() {
            *v = v.wrapping_add(self.jump());
        }
    }

    fn counter(&mut self, v: &mut u64) {
        if let Some(FfItem::Counter(d)) = self.next(2) {
            *v = v.wrapping_add(self.k.wrapping_mul(d));
        }
    }

    fn value(&mut self, v: &mut u32) {
        if let Some(FfItem::Value(d)) = self.next(3) {
            *v = v.wrapping_add((self.k as u32).wrapping_mul(d));
        }
    }

    fn reject(&mut self) {
        debug_assert!(false, "rejection after certification");
        self.mismatched = true;
    }
}

/// Visits one [`LinkWord`] in flight: class/head/tail bits and header
/// contents (routes, qid, credits — control state) as exact, payload
/// contents as a sliding [`value`](FfVisit::value).
pub fn visit_word(w: &mut LinkWord, v: &mut dyn FfVisit) {
    v.exact(
        w.class().index() as u64 | (u64::from(w.is_header()) << 1) | (u64::from(w.is_tail()) << 2),
    );
    if w.is_header() {
        v.exact(u64::from(w.word()));
    } else {
        let mut payload = w.word();
        v.value(&mut payload);
        *w = w.with_word(payload);
    }
}

/// Visits an optional wire register: presence as exact, then the word.
pub fn visit_opt_word(w: &mut Option<LinkWord>, v: &mut dyn FfVisit) {
    match w {
        None => v.exact(0),
        Some(lw) => {
            v.exact(1);
            visit_word(lw, v);
        }
    }
}

/// Least common multiple (saturating), for composing the fabric period
/// from slot-table rotations and port clock divisors.
pub fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    if a == 0 || b == 0 {
        return a.max(b);
    }
    (a / gcd(a, b)).saturating_mul(b)
}

impl Engine {
    /// Runs `cycles` cycles with the fast-forward backend enabled.
    ///
    /// Extends [`Engine::run`]: the quiescent skip fast path is identical,
    /// and on top of it the fabric is periodically offered the remaining
    /// window via [`FastForwardable::fast_forward`]. A declined attempt
    /// (no jump) arms a cool-down proportional to the work the attempt did
    /// — [`FF_COOLDOWN`] at minimum — so non-eligible workloads pay a
    /// bounded, amortized cost instead of a per-cycle scan.
    pub fn run_ff<C: FastForwardable + ?Sized>(fabric: &mut C, cycles: u64) {
        let mut remaining = cycles;
        let mut cooldown_until = 0u64;
        while remaining > 0 {
            if remaining >= SLOT_WORDS && fabric.quiescent() {
                let now = fabric.now();
                let chunk = remaining.min(fabric.next_event(now).saturating_sub(now));
                if chunk >= SLOT_WORDS {
                    fabric.skip(chunk);
                    remaining -= chunk;
                    continue;
                }
            }
            if fabric.now() >= cooldown_until {
                let out = fabric.fast_forward(remaining);
                debug_assert!(out.advanced <= remaining && out.jumped <= out.advanced);
                if out.jumped == 0 {
                    cooldown_until = fabric
                        .now()
                        .saturating_add((out.advanced * 4).max(FF_COOLDOWN));
                }
                if out.advanced > 0 {
                    remaining -= out.advanced;
                    continue;
                }
            }
            Self::tick(fabric);
            remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy fabric: a phase counter mod `period` (exact control state), a
    /// beat counter (counter), a sliding next-due stamp and a data word
    /// advancing by a fixed increment per beat.
    struct Metro {
        cycle: u64,
        period: u64,
        beats: u64,
        next_due: u64,
        word: u32,
        ramp: u32,
        ff_attempts: u64,
    }

    impl Metro {
        fn new(period: u64, ramp: u32) -> Self {
            Metro {
                cycle: 0,
                period,
                beats: 0,
                next_due: period,
                word: 0,
                ramp,
                ff_attempts: 0,
            }
        }

        fn ff_visit(&mut self, v: &mut dyn FfVisit) {
            v.exact(self.cycle % self.period);
            v.counter(&mut self.beats);
            v.stamp(&mut self.next_due);
            v.value(&mut self.word);
        }
    }

    impl Clocked for Metro {
        fn now(&self) -> u64 {
            self.cycle
        }

        fn emit(&mut self) {}

        fn absorb(&mut self) {
            self.cycle += 1;
            if self.cycle == self.next_due {
                self.beats += 1;
                self.word = self.word.wrapping_add(self.ramp);
                self.next_due += self.period;
            }
        }
    }

    impl FastForwardable for Metro {
        fn fast_forward(&mut self, max: u64) -> FfOutcome {
            self.ff_attempts += 1;
            let period = self.period;
            if 3 * period > max {
                return FfOutcome::DECLINED;
            }
            let mut d0 = FfDigest::new(self.now());
            self.ff_visit(&mut d0);
            Engine::run(self, period);
            let mut d1 = FfDigest::new(self.now());
            self.ff_visit(&mut d1);
            Engine::run(self, period);
            let mut d2 = FfDigest::new(self.now());
            self.ff_visit(&mut d2);
            let advanced = 2 * period;
            let Some(deltas) = periodic_deltas(&d0, &d1, &d2) else {
                return FfOutcome {
                    advanced,
                    jumped: 0,
                };
            };
            let k = (max - advanced) / period;
            if k == 0 {
                return FfOutcome {
                    advanced,
                    jumped: 0,
                };
            }
            let mut apply = FfApply::new(&deltas, k);
            let jump = apply.jump();
            self.ff_visit(&mut apply);
            assert!(apply.matched());
            self.cycle += jump;
            FfOutcome {
                advanced: advanced + jump,
                jumped: jump,
            }
        }
    }

    fn state(m: &Metro) -> (u64, u64, u64, u32) {
        (m.cycle, m.beats, m.next_due, m.word)
    }

    #[test]
    fn run_ff_matches_ticked_run_bit_for_bit() {
        for cycles in [1, 7, 24, 100, 1001, 9999] {
            let mut ticked = Metro::new(24, 3);
            let mut ffed = Metro::new(24, 3);
            Engine::run(&mut ticked, cycles);
            Engine::run_ff(&mut ffed, cycles);
            assert_eq!(state(&ticked), state(&ffed), "cycles={cycles}");
        }
    }

    #[test]
    fn long_runs_actually_jump() {
        let mut m = Metro::new(24, 1);
        Engine::run_ff(&mut m, 1_000_000);
        assert_eq!(m.cycle, 1_000_000);
        assert_eq!(m.beats, 1_000_000 / 24);
        assert!(m.ff_attempts < 10, "jump must cover almost everything");
    }

    #[test]
    fn declined_attempts_are_rate_limited() {
        // A fabric whose fast_forward always declines: run_ff must not
        // attempt once per cycle.
        struct Stubborn {
            cycle: u64,
            attempts: u64,
        }
        impl Clocked for Stubborn {
            fn now(&self) -> u64 {
                self.cycle
            }
            fn emit(&mut self) {}
            fn absorb(&mut self) {
                self.cycle += 1;
            }
        }
        impl FastForwardable for Stubborn {
            fn fast_forward(&mut self, _max: u64) -> FfOutcome {
                self.attempts += 1;
                FfOutcome::DECLINED
            }
        }
        let mut s = Stubborn {
            cycle: 0,
            attempts: 0,
        };
        Engine::run_ff(&mut s, 10_000);
        assert_eq!(s.cycle, 10_000);
        assert!(
            s.attempts <= 1 + 10_000 / FF_COOLDOWN,
            "attempts: {}",
            s.attempts
        );
    }

    #[test]
    fn aperiodic_counter_refuses_certification() {
        let mut d0 = FfDigest::new(0);
        let mut d1 = FfDigest::new(10);
        let mut d2 = FfDigest::new(20);
        for (d, mut v) in [(&mut d0, 5u64), (&mut d1, 8), (&mut d2, 12)] {
            d.counter(&mut v); // deltas 3 then 4: not periodic
        }
        assert!(periodic_deltas(&d0, &d1, &d2).is_none());
    }

    #[test]
    fn changed_exact_state_refuses_certification() {
        let mut d0 = FfDigest::new(0);
        let mut d1 = FfDigest::new(10);
        let mut d2 = FfDigest::new(20);
        d0.exact(1);
        d1.exact(1);
        d2.exact(2);
        assert!(periodic_deltas(&d0, &d1, &d2).is_none());
    }

    #[test]
    fn structure_change_refuses_certification() {
        let mut d0 = FfDigest::new(0);
        let mut d1 = FfDigest::new(10);
        let mut d2 = FfDigest::new(20);
        for d in [&mut d0, &mut d1, &mut d2] {
            d.exact(7);
        }
        let mut extra = 1u64;
        d2.counter(&mut extra); // d2 grew an item: not the same structure
        assert!(periodic_deltas(&d0, &d1, &d2).is_none());
        // Kind swap at the same position is also a structure change.
        let mut a = FfDigest::new(0);
        let mut b = FfDigest::new(10);
        let mut c = FfDigest::new(20);
        a.exact(7);
        b.exact(7);
        let mut x = 7u64;
        c.counter(&mut x);
        assert!(periodic_deltas(&a, &b, &c).is_none());
    }

    #[test]
    fn rejection_poisons_the_attempt() {
        let mut d0 = FfDigest::new(0);
        let mut d1 = FfDigest::new(10);
        let mut d2 = FfDigest::new(20);
        d1.reject();
        assert!(d1.rejected());
        d0.exact(0);
        d1.exact(0);
        d2.exact(0);
        assert!(periodic_deltas(&d0, &d1, &d2).is_none());
    }

    #[test]
    fn recycling_stamps_slide_and_frozen_stamps_decline() {
        // A stamp whose offset to the capture cycle is constant — the
        // queue entry holding it recycles with the period — certifies and
        // slides by the jump, whether spent (negative offset) or pending.
        let mut d0 = FfDigest::new(100);
        let mut d1 = FfDigest::new(110);
        let mut d2 = FfDigest::new(120);
        let (mut p0, mut p1, mut p2) = (95u64, 105, 115); // spent 5 ago
        let (mut f0, mut f1, mut f2) = (103u64, 113, 123); // due in 3
        d0.stamp(&mut p0);
        d0.stamp(&mut f0);
        d1.stamp(&mut p1);
        d1.stamp(&mut f1);
        d2.stamp(&mut p2);
        d2.stamp(&mut f2);
        let deltas = periodic_deltas(&d0, &d1, &d2).expect("periodic");
        let mut apply = FfApply::new(&deltas, 5);
        apply.stamp(&mut p2);
        apply.stamp(&mut f2);
        assert!(apply.matched());
        assert_eq!(p2, 115 + 5 * 10, "spent recycling stamp slides too");
        assert_eq!(f2, 123 + 5 * 10, "pending stamp slides by the jump");
        // A frozen absolute stamp drifts in relative offset and declines.
        let mut d0 = FfDigest::new(100);
        let mut d1 = FfDigest::new(110);
        let mut d2 = FfDigest::new(120);
        let (mut g0, mut g1, mut g2) = (40u64, 40, 40);
        d0.stamp(&mut g0);
        d1.stamp(&mut g1);
        d2.stamp(&mut g2);
        assert!(
            periodic_deltas(&d0, &d1, &d2).is_none(),
            "frozen stamp must fail certification"
        );
    }

    #[test]
    fn wrapping_values_extrapolate_modulo_2_32() {
        let mut m_ticked = Metro::new(8, 0x2000_0001);
        let mut m_ffed = Metro::new(8, 0x2000_0001);
        Engine::run(&mut m_ticked, 80_000);
        Engine::run_ff(&mut m_ffed, 80_000);
        assert_eq!(state(&m_ticked), state(&m_ffed));
    }

    #[test]
    fn lcm_composes_periods() {
        assert_eq!(lcm(3, 8), 24);
        assert_eq!(lcm(24, 1), 24);
        assert_eq!(lcm(0, 5), 5);
        assert_eq!(lcm(6, 4), 12);
    }

    #[test]
    fn visit_word_classifies_header_vs_payload() {
        let mut header = LinkWord::header_only(0xABCD, crate::WordClass::Guaranteed);
        let mut d = FfDigest::new(0);
        visit_word(&mut header, &mut d);
        let payload = LinkWord::payload(7, crate::WordClass::Guaranteed, true);
        visit_opt_word(&mut Some(payload), &mut d);
        visit_opt_word(&mut None, &mut d);
        assert!(!d.rejected());
        // A payload word is mutable through the walk (value), a header is
        // not: apply a +1-per-period delta and check only payload moved.
        let mut d0 = FfDigest::new(0);
        let mut d1 = FfDigest::new(10);
        let mut d2 = FfDigest::new(20);
        let mut h = header;
        let mut p = payload;
        visit_word(&mut h, &mut d0);
        visit_word(&mut p, &mut d0);
        visit_word(&mut h, &mut d1);
        p = p.with_word(8);
        visit_word(&mut p, &mut d1);
        visit_word(&mut h, &mut d2);
        p = p.with_word(9);
        visit_word(&mut p, &mut d2);
        let deltas = periodic_deltas(&d0, &d1, &d2).expect("periodic");
        let mut apply = FfApply::new(&deltas, 3);
        visit_word(&mut h, &mut apply);
        visit_word(&mut p, &mut apply);
        assert!(apply.matched());
        assert_eq!(h.word(), header.word());
        assert_eq!(p.word(), 12);
        let _ = payload;
    }
}
