//! NoC topologies: router graphs, NI attachment points and source-route
//! computation.
//!
//! The Æthereal flow instantiates the topology at design time from an XML
//! description; here a [`Topology`] value plays that role (see
//! `aethereal-cfg::spec` for the declarative front end). Meshes use
//! dimension-ordered XY routing, rings route the short way around, and
//! arbitrary graphs fall back to breadth-first shortest paths — all three
//! produce deadlock-free source routes for the BE class.
//!
//! Routes longer than one header ([`crate::MAX_HOPS`] hops) are planned by
//! [`Topology::route_any`], which splits the minimal hop list into a
//! multi-segment [`Route`] rewritten en route by gateway routers. Split
//! points never leave the minimal path; when the topology declares
//! [`Regions`], the planner prefers to split at declared region gateways
//! that lie on the path (so gateway rewrites align with, e.g., the shard
//! partition of a large mesh), and falls back to greedy
//! [`crate::MAX_HOPS`]-hop splits otherwise.

use crate::path::{Path, PathError, PortIdx, Route, RouteBuildError, MAX_HOPS};
use std::collections::VecDeque;

/// Identifies a router in the topology.
pub type RouterId = usize;

/// Identifies an NI attachment point (an endpoint of the NoC).
pub type NiId = usize;

/// Mesh direction port indices (paper-era convention: N, E, S, W, locals).
pub mod dir {
    /// North output port.
    pub const NORTH: u8 = 0;
    /// East output port.
    pub const EAST: u8 = 1;
    /// South output port.
    pub const SOUTH: u8 = 2;
    /// West output port.
    pub const WEST: u8 = 3;
    /// First local (NI-facing) port.
    pub const LOCAL0: u8 = 4;
}

/// One directed connection in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A router port.
    Router {
        /// Router id.
        router: RouterId,
        /// Port index on that router.
        port: PortIdx,
    },
    /// An NI attachment.
    Ni {
        /// NI id.
        ni: NiId,
    },
}

/// The flavour of a topology, kept for diagnostics and spec round-trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// `width × height` mesh.
    Mesh {
        /// Routers per row.
        width: usize,
        /// Routers per column.
        height: usize,
    },
    /// Unidirectional-pair ring of `n` routers.
    Ring {
        /// Number of routers.
        routers: usize,
    },
    /// Arbitrary router graph.
    Custom,
}

/// A bidirectional inter-router edge: `a.port_a ↔ b.port_b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterEdge {
    /// First router.
    pub a: RouterId,
    /// Port on `a` facing `b`.
    pub port_a: PortIdx,
    /// Second router.
    pub b: RouterId,
    /// Port on `b` facing `a`.
    pub port_b: PortIdx,
}

/// A grouping of routers into contiguous *regions*, each with a designated
/// *gateway* router — the preferred header-rewrite point for routes that do
/// not fit a single header (see [`Topology::route_any`]).
///
/// Regions are a planning concept only: any router can rewrite a header, so
/// declaring regions never changes what is routable, merely where long
/// routes split. Aligning regions with a shard
/// [`Partition`](crate::shard::Partition) keeps gateway rewrites local to
/// the region that owns them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regions {
    /// `region_of[router] = region id`.
    region_of: Vec<usize>,
    /// `gateways[region] = router id` of that region's gateway.
    gateways: Vec<RouterId>,
}

/// Error validating a [`Regions`] declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// Region ids must be dense `0..n` with every region non-empty.
    SparseRegions {
        /// The first unused region id.
        missing: usize,
    },
    /// The gateway list length must equal the number of regions.
    GatewayCountMismatch {
        /// Regions declared by the router map.
        regions: usize,
        /// Gateways provided.
        gateways: usize,
    },
    /// A gateway router does not belong to the region it serves.
    GatewayOutsideRegion {
        /// The region.
        region: usize,
        /// The offending gateway router.
        gateway: RouterId,
    },
    /// The router map is empty.
    Empty,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::SparseRegions { missing } => {
                write!(f, "region ids must be dense: region {missing} is empty")
            }
            RegionError::GatewayCountMismatch { regions, gateways } => {
                write!(f, "{regions} regions but {gateways} gateways")
            }
            RegionError::GatewayOutsideRegion { region, gateway } => {
                write!(f, "gateway {gateway} lies outside region {region}")
            }
            RegionError::Empty => write!(f, "region map is empty"),
        }
    }
}

impl std::error::Error for RegionError {}

impl Regions {
    /// Validates and builds a region declaration from a router → region map
    /// and a per-region gateway list.
    ///
    /// # Errors
    ///
    /// See [`RegionError`].
    pub fn new(region_of: Vec<usize>, gateways: Vec<RouterId>) -> Result<Self, RegionError> {
        if region_of.is_empty() {
            return Err(RegionError::Empty);
        }
        let n_regions = region_of.iter().max().copied().unwrap_or(0) + 1;
        let mut occupants = vec![0usize; n_regions];
        for &region in &region_of {
            occupants[region] += 1;
        }
        if let Some(missing) = occupants.iter().position(|&c| c == 0) {
            return Err(RegionError::SparseRegions { missing });
        }
        if gateways.len() != n_regions {
            return Err(RegionError::GatewayCountMismatch {
                regions: n_regions,
                gateways: gateways.len(),
            });
        }
        for (region, &gateway) in gateways.iter().enumerate() {
            if region_of.get(gateway).copied() != Some(region) {
                return Err(RegionError::GatewayOutsideRegion { region, gateway });
            }
        }
        Ok(Regions {
            region_of,
            gateways,
        })
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.gateways.len()
    }

    /// The region of `router`, if the map covers it.
    pub fn region_of(&self, router: RouterId) -> Option<usize> {
        self.region_of.get(router).copied()
    }

    /// The gateway router of `region`.
    pub fn gateway(&self, region: usize) -> Option<RouterId> {
        self.gateways.get(region).copied()
    }

    /// Whether `router` is some region's gateway.
    pub fn is_gateway(&self, router: RouterId) -> bool {
        self.gateways.contains(&router)
    }

    /// The raw router → region map.
    pub fn router_map(&self) -> &[usize] {
        &self.region_of
    }

    /// The raw per-region gateway list.
    pub fn gateway_list(&self) -> &[RouterId] {
        &self.gateways
    }
}

/// One directed link traversed by a [`Route`], as enumerated by
/// [`Topology::links_of_route_segmented`] for the slot allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteLink {
    /// The router owning the output (`usize::MAX` for the NI-injection
    /// pseudo link, matching [`Topology::links_of_route`]).
    pub router: RouterId,
    /// The output port (the source NI id for the injection pseudo link).
    pub port: PortIdx,
    /// Gateway rewrites crossed strictly before this link. Each rewrite
    /// delays the packet by one cycle relative to the pipelined
    /// slot-per-hop schedule, which the slot allocator must absorb.
    pub gateways_before: u32,
}

/// A topology: routers, the edges between them, and where NIs attach.
///
/// # Example
///
/// ```
/// use noc_sim::Topology;
/// let t = Topology::mesh(2, 2, 1);
/// assert_eq!(t.router_count(), 4);
/// assert_eq!(t.ni_count(), 4);
/// let path = t.route(0, 3).unwrap();
/// assert_eq!(path.hops(), 3); // E, S, eject
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    router_ports: Vec<usize>,
    edges: Vec<RouterEdge>,
    /// `ni_attach[ni] = (router, local port)`.
    ni_attach: Vec<(RouterId, PortIdx)>,
    /// Optional region/gateway declaration steering long-route splits.
    regions: Option<Regions>,
    /// Failed-link mask: bit `p` of `link_mask[r]` marks the directed link
    /// leaving router `r` through port `p` as unusable, and the planners
    /// route around it (see [`Topology::mask_link`]). All-zero (the
    /// default) leaves every routing decision bit-identical to a maskless
    /// topology.
    link_mask: Vec<u64>,
}

/// Error computing a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Unknown source or destination NI.
    UnknownNi {
        /// The offending NI id.
        ni: NiId,
    },
    /// No path exists between the routers.
    Unreachable {
        /// Source router.
        from: RouterId,
        /// Destination router.
        to: RouterId,
    },
    /// The route exists but does not fit in a header.
    Encoding(PathError),
    /// The route exists but cannot be segmented into a multi-header
    /// [`Route`] (too far even for the maximum segment count).
    Segmenting(RouteBuildError),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownNi { ni } => write!(f, "unknown NI id {ni}"),
            RouteError::Unreachable { from, to } => {
                write!(f, "no route from router {from} to router {to}")
            }
            RouteError::Encoding(e) => write!(f, "route does not fit header: {e}"),
            RouteError::Segmenting(e) => write!(f, "route cannot be segmented: {e}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<PathError> for RouteError {
    fn from(e: PathError) -> Self {
        RouteError::Encoding(e)
    }
}

impl From<RouteBuildError> for RouteError {
    fn from(e: RouteBuildError) -> Self {
        RouteError::Segmenting(e)
    }
}

impl Topology {
    /// Builds a `width × height` mesh with `nis_per_router` NIs on every
    /// router. NI ids are assigned router-major: NI `r * nis_per_router + k`
    /// sits on router `r`, local port `LOCAL0 + k`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `nis_per_router` is zero or the
    /// local port index would exceed the encodable port range.
    pub fn mesh(width: usize, height: usize, nis_per_router: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(nis_per_router >= 1, "need at least one NI per router");
        assert!(
            dir::LOCAL0 as usize + nis_per_router - 1 <= crate::path::MAX_PORT as usize,
            "too many NIs per router for the header port encoding"
        );
        let n = width * height;
        let mut edges = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let r = y * width + x;
                if x + 1 < width {
                    edges.push(RouterEdge {
                        a: r,
                        port_a: dir::EAST,
                        b: r + 1,
                        port_b: dir::WEST,
                    });
                }
                if y + 1 < height {
                    edges.push(RouterEdge {
                        a: r,
                        port_a: dir::SOUTH,
                        b: r + width,
                        port_b: dir::NORTH,
                    });
                }
            }
        }
        let mut ni_attach = Vec::new();
        for r in 0..n {
            for k in 0..nis_per_router {
                ni_attach.push((r, dir::LOCAL0 + k as PortIdx));
            }
        }
        Topology {
            kind: TopologyKind::Mesh { width, height },
            router_ports: vec![dir::LOCAL0 as usize + nis_per_router; n],
            edges,
            ni_attach,
            regions: None,
            link_mask: vec![0; n],
        }
    }

    /// Builds a bidirectional ring of `routers` routers, one NI each.
    /// Port 0 faces the next router (clockwise), port 1 the previous, port 2
    /// is local.
    ///
    /// # Panics
    ///
    /// Panics if `routers < 2`.
    pub fn ring(routers: usize) -> Self {
        assert!(routers >= 2, "a ring needs at least two routers");
        let mut edges = Vec::new();
        for r in 0..routers {
            let next = (r + 1) % routers;
            edges.push(RouterEdge {
                a: r,
                port_a: 0,
                b: next,
                port_b: 1,
            });
        }
        let ni_attach = (0..routers).map(|r| (r, 2 as PortIdx)).collect();
        Topology {
            kind: TopologyKind::Ring { routers },
            router_ports: vec![3; routers],
            edges,
            ni_attach,
            regions: None,
            link_mask: vec![0; routers],
        }
    }

    /// Builds a custom topology from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if an edge or attachment references a router or port out of
    /// range, or if two connections share a router port.
    pub fn custom(
        router_ports: Vec<usize>,
        edges: Vec<RouterEdge>,
        ni_attach: Vec<(RouterId, PortIdx)>,
    ) -> Self {
        let link_mask = vec![0; router_ports.len()];
        let t = Topology {
            kind: TopologyKind::Custom,
            router_ports,
            edges,
            ni_attach,
            regions: None,
            link_mask,
        };
        t.validate();
        t
    }

    fn validate(&self) {
        let mut used = std::collections::HashSet::new();
        let mut claim = |r: RouterId, p: PortIdx| {
            assert!(r < self.router_ports.len(), "router {r} out of range");
            assert!(
                (p as usize) < self.router_ports[r],
                "port {p} out of range on router {r}"
            );
            assert!(used.insert((r, p)), "router {r} port {p} connected twice");
        };
        for e in &self.edges {
            claim(e.a, e.port_a);
            claim(e.b, e.port_b);
        }
        for &(r, p) in &self.ni_attach {
            claim(r, p);
        }
    }

    /// Topology flavour.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.router_ports.len()
    }

    /// Number of ports on router `r`.
    pub fn ports_of(&self, r: RouterId) -> usize {
        self.router_ports[r]
    }

    /// Number of NI attachment points.
    pub fn ni_count(&self) -> usize {
        self.ni_attach.len()
    }

    /// The `(router, local port)` where NI `ni` attaches.
    pub fn ni_attachment(&self, ni: NiId) -> Option<(RouterId, PortIdx)> {
        self.ni_attach.get(ni).copied()
    }

    /// All inter-router edges.
    pub fn edges(&self) -> &[RouterEdge] {
        &self.edges
    }

    /// The neighbour reached from router `r` through port `p`, if that port
    /// is an inter-router port.
    pub fn neighbour(&self, r: RouterId, p: PortIdx) -> Option<(RouterId, PortIdx)> {
        for e in &self.edges {
            if e.a == r && e.port_a == p {
                return Some((e.b, e.port_b));
            }
            if e.b == r && e.port_b == p {
                return Some((e.a, e.port_a));
            }
        }
        None
    }

    /// The NI attached to router `r` port `p`, if any.
    pub fn ni_at(&self, r: RouterId, p: PortIdx) -> Option<NiId> {
        self.ni_attach
            .iter()
            .position(|&(rr, pp)| rr == r && pp == p)
    }

    // ---- Failed-link mask ------------------------------------------------

    /// Marks the directed link leaving `router` through `port` as failed:
    /// [`Topology::route`] and [`Topology::route_any`] plan around it from
    /// now on. Masking an ejection (NI-facing) port makes the attached NI
    /// unreachable; NI *injection* links are not router outputs and cannot
    /// be masked.
    ///
    /// While any mask bit is set, every topology kind routes by
    /// breadth-first shortest path over the unmasked links. Detours stay
    /// shortest-path in the degraded graph, but a mesh loses the XY turn
    /// restriction — re-certify GT schedules after re-planning (see
    /// `aethereal-verify`) and treat BE deadlock-freedom as a degraded-mode
    /// concern, as the paper's small configurations do.
    ///
    /// # Panics
    ///
    /// Panics if `router` or `port` is out of range, or if the router has
    /// more than 64 ports (the mask is one bit per port).
    pub fn mask_link(&mut self, router: RouterId, port: PortIdx) {
        assert!(router < self.router_count(), "router {router} out of range");
        assert!(
            (port as usize) < self.router_ports[router],
            "port {port} out of range on router {router}"
        );
        assert!(self.router_ports[router] <= 64, "mask holds 64 ports");
        self.link_mask[router] |= 1 << port;
    }

    /// Clears the failed mark on `(router, port)`.
    pub fn unmask_link(&mut self, router: RouterId, port: PortIdx) {
        if let Some(m) = self.link_mask.get_mut(router) {
            *m &= !(1u64 << port);
        }
    }

    /// Masks every output of `router` — the whole router is failed (e.g. a
    /// stalled output stage).
    pub fn mask_router(&mut self, router: RouterId) {
        for p in 0..self.router_ports[router] {
            self.mask_link(router, p as PortIdx);
        }
    }

    /// Clears the entire failed-link mask, restoring pristine routing.
    pub fn clear_link_mask(&mut self) {
        self.link_mask.iter_mut().for_each(|m| *m = 0);
    }

    /// Whether the directed link leaving `(router, port)` is masked.
    pub fn is_masked(&self, router: RouterId, port: PortIdx) -> bool {
        self.link_mask
            .get(router)
            .is_some_and(|m| m & (1 << port) != 0)
    }

    /// Whether any link is currently masked.
    pub fn has_masked_links(&self) -> bool {
        self.link_mask.iter().any(|&m| m != 0)
    }

    /// Every masked `(router, port)` pair, in router-major order.
    pub fn masked_links(&self) -> Vec<(RouterId, PortIdx)> {
        let mut out = Vec::new();
        for (r, &m) in self.link_mask.iter().enumerate() {
            for p in 0..self.router_ports[r] {
                if m & (1 << p) != 0 {
                    out.push((r, p as PortIdx));
                }
            }
        }
        out
    }

    /// Computes the source route from NI `from` to NI `to`, including the
    /// final ejection hop.
    ///
    /// Meshes use XY (dimension-ordered) routing; rings take the shorter
    /// direction; custom graphs use BFS shortest paths. All are deadlock-free
    /// for the BE class (XY is turn-restricted; the others are used with the
    /// small configurations of the paper where BE buffers bound worm length).
    ///
    /// # Errors
    ///
    /// See [`RouteError`].
    pub fn route(&self, from: NiId, to: NiId) -> Result<Path, RouteError> {
        let (fr, _fp) = self
            .ni_attachment(from)
            .ok_or(RouteError::UnknownNi { ni: from })?;
        let (tr, tp) = self
            .ni_attachment(to)
            .ok_or(RouteError::UnknownNi { ni: to })?;
        let mut hops = self.plan_hops(fr, tr)?;
        if self.is_masked(tr, tp) {
            // The ejection link into the destination NI is failed.
            return Err(RouteError::Unreachable { from: fr, to: tr });
        }
        hops.push(tp);
        Ok(Path::new(&hops)?)
    }

    /// The minimal router-to-router hop list, honouring the failed-link
    /// mask: maskless topologies use the kind-specific planner unchanged
    /// (bit-identical to the pre-mask behaviour); any set mask bit switches
    /// every kind to BFS shortest paths over the unmasked links.
    fn plan_hops(&self, fr: RouterId, tr: RouterId) -> Result<Vec<PortIdx>, RouteError> {
        if self.has_masked_links() {
            return self.bfs_hops(fr, tr);
        }
        Ok(match self.kind {
            TopologyKind::Mesh { width, .. } => Self::xy_hops(fr, tr, width),
            TopologyKind::Ring { routers } => Self::ring_hops(fr, tr, routers),
            TopologyKind::Custom => self.bfs_hops(fr, tr)?,
        })
    }

    /// Attaches a validated region/gateway declaration (builder form).
    pub fn with_regions(mut self, regions: Regions) -> Self {
        self.set_regions(regions);
        self
    }

    /// Attaches a validated region/gateway declaration.
    ///
    /// # Panics
    ///
    /// Panics if the region map does not cover exactly this topology's
    /// routers.
    pub fn set_regions(&mut self, regions: Regions) {
        assert_eq!(
            regions.router_map().len(),
            self.router_count(),
            "region map must cover exactly the topology's routers"
        );
        self.regions = Some(regions);
    }

    /// The region/gateway declaration, if one is attached.
    pub fn regions(&self) -> Option<&Regions> {
        self.regions.as_ref()
    }

    /// Computes the source route from NI `from` to NI `to` as a (possibly
    /// multi-segment) [`Route`], lifting the single-header
    /// [`crate::MAX_HOPS`] distance limit of [`Topology::route`].
    ///
    /// The hop list is always the minimal one [`Topology::route`] would
    /// produce; when it exceeds [`crate::MAX_HOPS`] hops it is split into
    /// segments rewritten en route by gateway routers. Split points are
    /// chosen on the minimal path: within each [`crate::MAX_HOPS`]-hop
    /// window the planner prefers the **last declared region gateway**
    /// (see [`Regions`]) and otherwise splits greedily at the window end —
    /// so route length (and thus latency in hops) never depends on the
    /// region declaration.
    ///
    /// Routes that fit one header return as single-segment routes whose
    /// header encoding is bit-identical to [`Topology::route`].
    ///
    /// # Errors
    ///
    /// See [`RouteError`].
    pub fn route_any(&self, from: NiId, to: NiId) -> Result<Route, RouteError> {
        let (fr, _fp) = self
            .ni_attachment(from)
            .ok_or(RouteError::UnknownNi { ni: from })?;
        let (tr, tp) = self
            .ni_attachment(to)
            .ok_or(RouteError::UnknownNi { ni: to })?;
        let mut hops = self.plan_hops(fr, tr)?;
        if self.is_masked(tr, tp) {
            // The ejection link into the destination NI is failed.
            return Err(RouteError::Unreachable { from: fr, to: tr });
        }
        hops.push(tp);
        if hops.len() <= MAX_HOPS {
            return Ok(Route::single(Path::new(&hops)?));
        }
        // The router the packet sits at *before* taking hop i; a split
        // before hop i makes routers_at[i] the gateway that rewrites. Only
        // needed to match declared gateways — greedy splits never read it.
        let routers_at: Vec<RouterId> = if self.regions.is_some() {
            let mut at = Vec::with_capacity(hops.len());
            let mut r = fr;
            for &hop in &hops {
                at.push(r);
                if let Some((nr, _)) = self.neighbour(r, hop) {
                    r = nr;
                }
            }
            at
        } else {
            Vec::new()
        };
        let mut segments = Vec::new();
        let mut pos = 0;
        while hops.len() - pos > MAX_HOPS {
            let window_end = pos + MAX_HOPS;
            // An early (gateway-preferred) split spends a segment on fewer
            // hops, so it is only honoured while the remaining hops still
            // fit the remaining segment budget — declaring regions must
            // never make a greedily-routable pair unroutable.
            let budget_after = crate::path::MAX_ROUTE_SEGMENTS.saturating_sub(segments.len() + 1);
            let split = match &self.regions {
                Some(regions) => (pos + 1..=window_end)
                    .rev()
                    .find(|&i| {
                        regions.is_gateway(routers_at[i])
                            && (hops.len() - i).div_ceil(MAX_HOPS) <= budget_after
                    })
                    .unwrap_or(window_end),
                None => window_end,
            };
            segments.push(Path::new(&hops[pos..split])?);
            pos = split;
        }
        segments.push(Path::new(&hops[pos..])?);
        Ok(Route::from_segments(segments)?)
    }

    fn xy_hops(from: RouterId, to: RouterId, width: usize) -> Vec<PortIdx> {
        let (fx, fy) = (from % width, from / width);
        let (tx, ty) = (to % width, to / width);
        let mut hops = Vec::new();
        let dx = tx as isize - fx as isize;
        for _ in 0..dx.abs() {
            hops.push(if dx > 0 { dir::EAST } else { dir::WEST });
        }
        let dy = ty as isize - fy as isize;
        for _ in 0..dy.abs() {
            hops.push(if dy > 0 { dir::SOUTH } else { dir::NORTH });
        }
        hops
    }

    fn ring_hops(from: RouterId, to: RouterId, n: usize) -> Vec<PortIdx> {
        let cw = (to + n - from) % n;
        let ccw = (from + n - to) % n;
        if cw <= ccw {
            vec![0; cw]
        } else {
            vec![1; ccw]
        }
    }

    fn bfs_hops(&self, from: RouterId, to: RouterId) -> Result<Vec<PortIdx>, RouteError> {
        if from == to {
            return Ok(Vec::new());
        }
        let n = self.router_count();
        let mut prev: Vec<Option<(RouterId, PortIdx)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[from] = true;
        q.push_back(from);
        while let Some(r) = q.pop_front() {
            for p in 0..self.router_ports[r] {
                if self.is_masked(r, p as PortIdx) {
                    continue;
                }
                if let Some((nr, _)) = self.neighbour(r, p as PortIdx) {
                    if !seen[nr] {
                        seen[nr] = true;
                        prev[nr] = Some((r, p as PortIdx));
                        if nr == to {
                            q.clear();
                            break;
                        }
                        q.push_back(nr);
                    }
                }
            }
        }
        if !seen[to] {
            return Err(RouteError::Unreachable { from, to });
        }
        let mut hops = Vec::new();
        let mut cur = to;
        while cur != from {
            let (pr, pp) = prev[cur].expect("bfs backtrack");
            hops.push(pp);
            cur = pr;
        }
        hops.reverse();
        Ok(hops)
    }

    /// Enumerates the directed inter-router links traversed by `path`
    /// starting from NI `from`, as `(router, output port)` pairs — i.e. the
    /// links whose TDM slots a GT connection must reserve, **including** the
    /// NI-injection link represented as the pseudo pair `(usize::MAX, ni)`.
    ///
    /// Used by the slot allocator in `aethereal-cfg`.
    pub fn links_of_route(&self, from: NiId, path: &Path) -> Vec<(RouterId, PortIdx)> {
        let mut links = Vec::new();
        let Some((mut r, _)) = self.ni_attachment(from) else {
            return links;
        };
        links.push((usize::MAX, from as PortIdx)); // NI → first router injection link
        for hop in path.iter() {
            links.push((r, hop));
            match self.neighbour(r, hop) {
                Some((nr, _)) => r = nr,
                None => break, // ejection hop: link into the destination NI
            }
        }
        links
    }

    /// Enumerates the directed links traversed by a multi-segment `route`
    /// from NI `from`, annotating each with the number of gateway rewrites
    /// crossed before it (each rewrite costs one cycle of extra pipeline
    /// delay — see [`RouteLink::gateways_before`]). For single-segment
    /// routes this reduces exactly to [`Topology::links_of_route`] with
    /// `gateways_before == 0` everywhere.
    pub fn links_of_route_segmented(&self, from: NiId, route: &Route) -> Vec<RouteLink> {
        let mut links = Vec::new();
        let Some((mut r, _)) = self.ni_attachment(from) else {
            return links;
        };
        links.push(RouteLink {
            router: usize::MAX,
            port: from as PortIdx,
            gateways_before: 0,
        });
        let mut gateways_before = 0u32;
        for (i, seg) in route.segments().iter().enumerate() {
            if i > 0 {
                gateways_before += 1;
            }
            for hop in seg.iter() {
                links.push(RouteLink {
                    router: r,
                    port: hop,
                    gateways_before,
                });
                match self.neighbour(r, hop) {
                    Some((nr, _)) => r = nr,
                    None => return links, // ejection hop into the NI
                }
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let t = Topology::mesh(3, 2, 1);
        assert_eq!(t.router_count(), 6);
        assert_eq!(t.ni_count(), 6);
        assert_eq!(t.ports_of(0), 5);
        assert_eq!(
            t.kind(),
            TopologyKind::Mesh {
                width: 3,
                height: 2
            }
        );
    }

    #[test]
    fn mesh_multi_ni() {
        let t = Topology::mesh(2, 2, 2);
        assert_eq!(t.ni_count(), 8);
        assert_eq!(t.ni_attachment(3), Some((1, dir::LOCAL0 + 1)));
    }

    #[test]
    fn mesh_xy_route_shape() {
        let t = Topology::mesh(2, 2, 1);
        // NI0 (router 0, top-left) → NI3 (router 3, bottom-right): E, S, eject.
        let p = t.route(0, 3).unwrap();
        let hops: Vec<_> = p.iter().collect();
        assert_eq!(hops, vec![dir::EAST, dir::SOUTH, dir::LOCAL0]);
    }

    #[test]
    fn mesh_route_to_self_is_eject_only() {
        let t = Topology::mesh(2, 2, 2);
        // NI0 and NI1 share router 0.
        let p = t.route(0, 1).unwrap();
        let hops: Vec<_> = p.iter().collect();
        assert_eq!(hops, vec![dir::LOCAL0 + 1]);
    }

    #[test]
    fn mesh_route_west_north() {
        let t = Topology::mesh(2, 2, 1);
        let p = t.route(3, 0).unwrap();
        let hops: Vec<_> = p.iter().collect();
        assert_eq!(hops, vec![dir::WEST, dir::NORTH, dir::LOCAL0]);
    }

    #[test]
    fn neighbours_are_symmetric() {
        let t = Topology::mesh(3, 3, 1);
        for e in t.edges() {
            assert_eq!(t.neighbour(e.a, e.port_a), Some((e.b, e.port_b)));
            assert_eq!(t.neighbour(e.b, e.port_b), Some((e.a, e.port_a)));
        }
    }

    #[test]
    fn ring_routes_short_way() {
        let t = Topology::ring(6);
        // 0 → 2: clockwise 2 hops.
        let p = t.route(0, 2).unwrap();
        assert_eq!(p.hops(), 3);
        assert_eq!(p.hop(0), Some(0));
        // 0 → 5: counter-clockwise 1 hop.
        let p = t.route(0, 5).unwrap();
        assert_eq!(p.hops(), 2);
        assert_eq!(p.hop(0), Some(1));
    }

    #[test]
    fn custom_bfs_route() {
        // Line of three routers, NI on each end router.
        let t = Topology::custom(
            vec![3, 3, 3],
            vec![
                RouterEdge {
                    a: 0,
                    port_a: 0,
                    b: 1,
                    port_b: 1,
                },
                RouterEdge {
                    a: 1,
                    port_a: 0,
                    b: 2,
                    port_b: 1,
                },
            ],
            vec![(0, 2), (2, 2)],
        );
        let p = t.route(0, 1).unwrap();
        let hops: Vec<_> = p.iter().collect();
        assert_eq!(hops, vec![0, 0, 2]);
    }

    #[test]
    fn custom_unreachable_reported() {
        let t = Topology::custom(vec![1, 1], vec![], vec![(0, 0), (1, 0)]);
        assert!(matches!(t.route(0, 1), Err(RouteError::Unreachable { .. })));
    }

    #[test]
    fn unknown_ni_reported() {
        let t = Topology::mesh(2, 2, 1);
        assert_eq!(
            t.route(0, 99).unwrap_err(),
            RouteError::UnknownNi { ni: 99 }
        );
    }

    #[test]
    fn mask_reroutes_mesh_same_length() {
        let mut t = Topology::mesh(2, 2, 1);
        let pristine: Vec<_> = t.route(0, 3).unwrap().iter().collect();
        assert_eq!(pristine, vec![dir::EAST, dir::SOUTH, dir::LOCAL0]);
        t.mask_link(0, dir::EAST);
        let detour: Vec<_> = t.route(0, 3).unwrap().iter().collect();
        assert_eq!(
            detour,
            vec![dir::SOUTH, dir::EAST, dir::LOCAL0],
            "detour takes the equal-length unmasked corner"
        );
        // route_any agrees with route on the masked graph.
        let any = t.route_any(0, 3).unwrap();
        assert_eq!(any.segments().len(), 1);
        assert_eq!(any.segments()[0].iter().collect::<Vec<_>>(), detour);
    }

    #[test]
    fn unmask_restores_pristine_routing_bit_identically() {
        let mut t = Topology::mesh(3, 3, 1);
        let before = t.route(0, 8).unwrap();
        t.mask_link(0, dir::EAST);
        assert_ne!(t.route(0, 8).unwrap().iter().collect::<Vec<_>>()[0], {
            let h: Vec<_> = before.iter().collect();
            h[0]
        });
        t.unmask_link(0, dir::EAST);
        assert!(!t.has_masked_links());
        assert_eq!(
            t.route(0, 8).unwrap().iter().collect::<Vec<_>>(),
            before.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn mask_cuts_make_destination_unreachable() {
        let mut t = Topology::mesh(2, 2, 1);
        t.mask_link(0, dir::EAST);
        t.mask_link(0, dir::SOUTH);
        assert!(matches!(
            t.route(0, 3),
            Err(RouteError::Unreachable { from: 0, to: 3 })
        ));
        // Other pairs still plan (around the dead corner where needed).
        assert!(t.route(1, 3).is_ok());
    }

    #[test]
    fn masked_ejection_port_is_unreachable() {
        let mut t = Topology::mesh(2, 2, 1);
        t.mask_link(3, dir::LOCAL0);
        assert!(matches!(
            t.route(0, 3),
            Err(RouteError::Unreachable { from: 0, to: 3 })
        ));
        assert!(matches!(
            t.route_any(0, 3),
            Err(RouteError::Unreachable { from: 0, to: 3 })
        ));
    }

    #[test]
    fn mask_router_blacks_out_every_output() {
        let mut t = Topology::mesh(3, 3, 1);
        t.mask_router(4); // centre router of the 3x3
        assert_eq!(t.masked_links().len(), t.ports_of(4));
        // 0 → 8 must now avoid the centre entirely.
        let p = t.route(0, 8).unwrap();
        let mut r = 0;
        for hop in p.iter() {
            assert_ne!(r, 4, "route crosses the failed router");
            match t.neighbour(r, hop) {
                Some((nr, _)) => r = nr,
                None => break,
            }
        }
        t.clear_link_mask();
        assert!(!t.has_masked_links());
    }

    #[test]
    #[should_panic(expected = "connected twice")]
    fn double_port_use_panics() {
        let _ = Topology::custom(
            vec![2, 2],
            vec![RouterEdge {
                a: 0,
                port_a: 0,
                b: 1,
                port_b: 0,
            }],
            vec![(0, 0), (1, 1)],
        );
    }

    #[test]
    fn links_of_route_walks_the_path() {
        let t = Topology::mesh(2, 2, 1);
        let p = t.route(0, 3).unwrap();
        let links = t.links_of_route(0, &p);
        // injection, router0→E, router1→S, router3→local.
        assert_eq!(links.len(), 4);
        assert_eq!(links[0], (usize::MAX, 0));
        assert_eq!(links[1], (0, dir::EAST));
        assert_eq!(links[2], (1, dir::SOUTH));
        assert_eq!(links[3], (3, dir::LOCAL0));
    }

    #[test]
    fn ni_at_inverse_of_attachment() {
        let t = Topology::mesh(2, 2, 2);
        for ni in 0..t.ni_count() {
            let (r, p) = t.ni_attachment(ni).unwrap();
            assert_eq!(t.ni_at(r, p), Some(ni));
        }
    }

    #[test]
    fn max_mesh_route_fits_header() {
        // 4x4 mesh worst case: 3 + 3 hops + eject = 7 = MAX_HOPS.
        let t = Topology::mesh(4, 4, 1);
        assert!(t.route(0, 15).is_ok());
        assert!(t.route(12, 3).is_ok());
    }

    #[test]
    fn route_any_short_is_bit_identical_to_route() {
        let t = Topology::mesh(4, 4, 1);
        for (from, to) in [(0, 15), (12, 3), (5, 5), (0, 1)] {
            let single = t.route(from, to).unwrap();
            let route = t.route_any(from, to).unwrap();
            assert!(route.is_single());
            assert_eq!(route.header_segment().encode(), single.encode());
        }
    }

    #[test]
    fn route_any_splits_long_mesh_routes_minimally() {
        let t = Topology::mesh(8, 8, 1);
        // Opposite corners: 7 E + 7 S + eject = 15 hops, minimal.
        let r = t.route_any(0, 63).unwrap();
        assert_eq!(r.total_hops(), 15);
        assert_eq!(r.segments().len(), 3);
        let hops: Vec<_> = r.iter_hops().collect();
        let mut expect = vec![dir::EAST; 7];
        expect.extend(vec![dir::SOUTH; 7]);
        expect.push(dir::LOCAL0);
        assert_eq!(hops, expect);
    }

    #[test]
    fn route_any_prefers_region_gateways_on_the_path() {
        // 8x8 mesh, two row-band regions; gateways at the start of rows 1
        // and 4 — router 32 (x=0, y=4) lies on the minimal S-then-eject
        // path from NI 0 down column 0.
        let regions =
            Regions::new((0..64).map(|r| usize::from(r >= 32)).collect(), vec![8, 32]).unwrap();
        let t = Topology::mesh(8, 8, 1).with_regions(regions);
        // NI 0 → NI 56 (x=0, y=7): 7 S + eject = 8 hops, split required.
        let r = t.route_any(0, 56).unwrap();
        assert_eq!(r.total_hops(), 8, "split adds no hops");
        assert_eq!(r.segments().len(), 2);
        // The split lands at the declared gateway (router 32, 4 hops in),
        // not at the greedy 7-hop point.
        assert_eq!(r.segments()[0].hops(), 4);
        // And routing is unaffected for in-region pairs.
        assert!(t.route_any(0, 8).unwrap().is_single());
    }

    #[test]
    fn adversarial_gateways_never_exhaust_the_segment_budget() {
        // 16x16 mesh, 0 → 255 needs 31 hops = 5 greedy segments (the full
        // budget). Gateways sitting right at the start of the minimal path
        // would, if always honoured, force tiny segments and overflow the
        // budget — the planner must skip them instead of failing.
        let mut region_of = vec![1usize; 256];
        // Region 0 = the first few routers of row 0, gateways among them.
        region_of[..4].fill(0);
        let regions = Regions::new(region_of, vec![1, 255]).unwrap();
        let t = Topology::mesh(16, 16, 1).with_regions(regions);
        let r = t.route_any(0, 255).expect("stays routable with regions");
        assert_eq!(r.total_hops(), 31);
        assert!(r.segments().len() <= crate::path::MAX_ROUTE_SEGMENTS);
        // And matches the greedy route's hop sequence.
        let plain = Topology::mesh(16, 16, 1).route_any(0, 255).unwrap();
        assert_eq!(
            r.iter_hops().collect::<Vec<_>>(),
            plain.iter_hops().collect::<Vec<_>>()
        );
    }

    #[test]
    fn route_any_ring_and_custom_split() {
        let t = Topology::ring(20);
        let r = t.route_any(0, 10).unwrap(); // 10 hops + eject = 11
        assert_eq!(r.total_hops(), 11);
        assert_eq!(r.segments().len(), 2);
    }

    #[test]
    fn regions_validation() {
        assert!(Regions::new(vec![0, 0, 1, 1], vec![0, 2]).is_ok());
        assert_eq!(
            Regions::new(vec![0, 0, 2, 2], vec![0, 2]).unwrap_err(),
            RegionError::SparseRegions { missing: 1 }
        );
        assert_eq!(
            Regions::new(vec![0, 0, 1, 1], vec![0]).unwrap_err(),
            RegionError::GatewayCountMismatch {
                regions: 2,
                gateways: 1
            }
        );
        assert_eq!(
            Regions::new(vec![0, 0, 1, 1], vec![0, 1]).unwrap_err(),
            RegionError::GatewayOutsideRegion {
                region: 1,
                gateway: 1
            }
        );
        assert_eq!(
            Regions::new(vec![], vec![]).unwrap_err(),
            RegionError::Empty
        );
    }

    #[test]
    #[should_panic(expected = "cover exactly")]
    fn region_map_must_match_router_count() {
        let regions = Regions::new(vec![0, 0], vec![0]).unwrap();
        let _ = Topology::mesh(2, 2, 1).with_regions(regions);
    }

    #[test]
    fn segmented_links_reduce_to_plain_links_for_single_routes() {
        let t = Topology::mesh(2, 2, 1);
        let route = t.route_any(0, 3).unwrap();
        let path = t.route(0, 3).unwrap();
        let plain = t.links_of_route(0, &path);
        let seg = t.links_of_route_segmented(0, &route);
        assert_eq!(seg.len(), plain.len());
        for (s, p) in seg.iter().zip(&plain) {
            assert_eq!((s.router, s.port), *p);
            assert_eq!(s.gateways_before, 0);
        }
    }

    #[test]
    fn segmented_links_count_gateways() {
        let t = Topology::mesh(8, 8, 1);
        let route = t.route_any(0, 63).unwrap(); // segments of 7, 7, 1
        let links = t.links_of_route_segmented(0, &route);
        assert_eq!(links.len(), 16); // injection + 15 hops
        assert_eq!(links[0].gateways_before, 0);
        assert_eq!(links[7].gateways_before, 0); // last link of segment 0
        assert_eq!(links[8].gateways_before, 1); // first link after gateway 1
        assert_eq!(links[15].gateways_before, 2); // ejection after gateway 2
    }
}
