//! The workspace-wide simulation engine: one two-phase cycle contract and
//! one generic driver for everything that ticks.
//!
//! # The contract
//!
//! The Æthereal NoC is only race-free because every cycle is split into two
//! globally ordered phases (see [`crate::noc`]):
//!
//! 1. **emit** — every producer places at most one word on each outgoing
//!    wire, using only state registered in previous cycles;
//! 2. **absorb** — every consumer registers the word on its incoming wire.
//!
//! This discipline is what makes the GT slot-alignment arithmetic (slot `s`
//! on hop `h` ⇒ slot `s + h` on hop `h + 1`) exact regardless of iteration
//! order. The seed code re-implemented the split, the clock division and
//! the run loops separately in `sim::Noc`, `aethereal_ni::NiKernel`,
//! `aethereal_cfg::NocSystem` and the `aethereal_proto` IP traits; this
//! module is the single definition they all now share.
//!
//! Two traits express the contract at the two levels that exist in the
//! system:
//!
//! * [`Clocked`] — a **self-contained fabric** (a [`Noc`](crate::Noc), a
//!   whole `NocSystem`) that owns its cycle counter. Its phases run in
//!   *emit-then-absorb* order: emission must globally precede absorption so
//!   wires stay race-free.
//! * [`ClockedWith`] — an **endpoint ticked against a context** (an NI
//!   kernel against its [`NiLink`](crate::NiLink), an IP model against its
//!   port stack). Endpoints run *absorb-then-emit* within the fabric's emit
//!   phase: they first drain what the previous cycle delivered, then stage
//!   this cycle's word.
//!
//! [`ClockDomain`] centralizes integer clock division (each NI port "can
//! have a different clock frequency", §4.1 of the paper), replacing the
//! inline `cycle % div == 0` checks that were scattered across the crates.
//!
//! # The driver, the quiescent fast path and the next-event horizon
//!
//! [`Engine::run`] / [`Engine::run_until`] are the only run loops in the
//! workspace. `run` has a slot-table-aware fast path: when a fabric reports
//! itself [`quiescent`](Clocked::quiescent) — no words in flight, no
//! sendable data, no pending credits — ticking it can change nothing except
//! time-derived counters, so the driver batches cycles into
//! [`skip`](Clocked::skip) calls. Implementors of `skip` account for
//! per-slot effects arithmetically (e.g. the NI kernel adds one unused-slot
//! event per reserved slot crossed, walking its slot table instead of the
//! clock).
//!
//! The all-or-nothing skip of the first engine generation is generalized by
//! [`Clocked::next_event`]: a quiescent fabric reports the earliest future
//! cycle at which it could *spontaneously* act again (a paced traffic
//! source's next submission rounded to its port clock's
//! [`ClockDomain::next_edge`], a trace entry's timestamp, …), and `run`
//! skips exactly up to that horizon instead of either skipping everything
//! or nothing. A fully drained fabric reports `u64::MAX`, which degenerates
//! to the old skip-the-rest behavior.
//!
//! `run_until` observes every cycle boundary: the predicate is evaluated
//! before each cycle, and while the fabric is quiescent the tick itself is
//! replaced by the (state-identical, by the quiescence contract) `skip(1)`.
//! [`Engine::run_until_horizon`] is the explicit opt-in for *cycle-driven*
//! predicates, batching whole quiescent stretches up to the next-event
//! horizon between predicate checks.

use crate::word::SLOT_WORDS;

/// Integer clock divider against the 500 MHz base network clock.
///
/// A domain with divisor `d` has a clock edge on every base cycle that is a
/// multiple of `d`; components in the domain tick only on edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    div: u32,
}

impl ClockDomain {
    /// The base (network) clock domain: an edge every cycle.
    pub const BASE: ClockDomain = ClockDomain { div: 1 };

    /// Creates a domain dividing the base clock by `div`.
    ///
    /// # Panics
    ///
    /// Panics if `div` is zero.
    pub fn new(div: u32) -> Self {
        assert!(div >= 1, "clock divisor must be ≥ 1");
        ClockDomain { div }
    }

    /// The divisor.
    #[inline]
    pub fn div(self) -> u32 {
        self.div
    }

    /// Whether this domain has a clock edge at base cycle `cycle`.
    #[inline]
    pub fn ticks_at(self, cycle: u64) -> bool {
        cycle.is_multiple_of(u64::from(self.div))
    }

    /// The first edge at or after `cycle`.
    #[inline]
    pub fn next_edge(self, cycle: u64) -> u64 {
        let d = u64::from(self.div);
        cycle.div_ceil(d) * d
    }

    /// Number of edges in the half-open base-cycle window
    /// `[start, start + len)`.
    #[inline]
    pub fn edges_in(self, start: u64, len: u64) -> u64 {
        let d = u64::from(self.div);
        // Edges in [0, n) is ceil(n / d).
        (start + len).div_ceil(d) - start.div_ceil(d)
    }

    /// Completed local cycles after `cycle` base cycles.
    #[inline]
    pub fn local_now(self, cycle: u64) -> u64 {
        cycle / u64::from(self.div)
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::BASE
    }
}

/// A self-contained fabric advancing under the two-phase cycle contract.
///
/// Phase order is **emit then absorb**: all producers place words on wires
/// from previous-cycle state, then all consumers register them. `absorb`
/// completes the cycle and must advance [`now`](Clocked::now) by one.
pub trait Clocked {
    /// The current base cycle (number of completed cycles).
    fn now(&self) -> u64;

    /// Phase 1: place at most one word on every outgoing wire, based on
    /// state from previous cycles.
    fn emit(&mut self);

    /// Phase 2: register arriving words, return credits, advance the cycle
    /// counter.
    fn absorb(&mut self);

    /// Whether a tick can change nothing but time-derived counters: no
    /// words in flight, no queued work, no pending credits, and no internal
    /// source that could create any without external input.
    ///
    /// Returning `true` licenses [`Engine::run`] to replace ticks with one
    /// [`skip`](Clocked::skip). The default is `false`: never skip.
    fn quiescent(&self) -> bool {
        false
    }

    /// Advances time-derived state by `cycles` cycles as if ticked while
    /// [`quiescent`](Clocked::quiescent); must be overridden (together with
    /// `quiescent`) to make the fast path effective. The default simply
    /// ticks, which is always correct.
    fn skip(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.emit();
            self.absorb();
        }
    }

    /// The earliest base cycle at which the fabric could act again *on its
    /// own* — without any external input — given that it is currently
    /// [`quiescent`](Clocked::quiescent): a paced generator's next
    /// submission (rounded up to its port clock's
    /// [`ClockDomain::next_edge`]), a trace entry's timestamp, and so on.
    ///
    /// Only consulted while quiescent; [`Engine::run`] (and the shard
    /// activity-set scheduler in [`crate::shard`]) will
    /// [`skip`](Clocked::skip) at most up to this horizon, never past it.
    /// `u64::MAX` — the default — means "never": nothing can happen without
    /// external input, which reproduces the original skip-the-rest fast
    /// path.
    fn next_event(&self, now: u64) -> u64 {
        let _ = now;
        u64::MAX
    }
}

/// An endpoint ticked against an external context: an NI kernel against its
/// router link, an IP model against its port stack.
///
/// Phase order is **absorb then emit**, the mirror of [`Clocked`]: within
/// the fabric's emit phase an endpoint first drains what the previous
/// cycle's absorb delivered to it, then stages this cycle's word.
pub trait ClockedWith<Ctx: ?Sized> {
    /// Drain phase: consume everything the previous cycle delivered.
    fn absorb(&mut self, ctx: &mut Ctx, cycle: u64);

    /// Produce phase: stage at most one word per output toward `ctx`.
    fn emit(&mut self, ctx: &mut Ctx, cycle: u64);

    /// One endpoint cycle: absorb, then emit.
    fn tick(&mut self, ctx: &mut Ctx, cycle: u64) {
        self.absorb(ctx, cycle);
        self.emit(ctx, cycle);
    }

    /// Endpoint analogue of [`Clocked::quiescent`]; see there.
    fn quiescent(&self) -> bool {
        false
    }

    /// Endpoint analogue of [`Clocked::skip`]: advance time-derived state
    /// across `[from_cycle, from_cycle + cycles)` without ticking. Only
    /// called while [`quiescent`](ClockedWith::quiescent); implementors
    /// overriding `quiescent` must override this accordingly.
    fn skip(&mut self, from_cycle: u64, cycles: u64) {
        let _ = (from_cycle, cycles);
    }

    /// Endpoint analogue of [`Clocked::next_event`]: the earliest base
    /// cycle at which this endpoint could act spontaneously while
    /// quiescent. Containers (an NI over its shells, a system over its
    /// regions) compose their own horizon as the minimum over their parts.
    fn next_event(&self, now: u64) -> u64 {
        let _ = now;
        u64::MAX
    }

    /// The earliest base cycle ≥ `now` at which this endpoint could act
    /// without external input — `now` itself while active. Unlike the
    /// [`quiescent`](ClockedWith::quiescent)/[`next_event`](ClockedWith::next_event)
    /// pair, this may report a *bounded* horizon for an endpoint that still
    /// holds state, as long as every tick strictly before the horizon is a
    /// no-op: the NI kernel uses it to report the next reserved slot at
    /// which queued GT data becomes sendable, so a region draining a GT
    /// stream can sleep between its slots instead of ticking through them.
    ///
    /// Implementors overriding this must keep [`skip`](ClockedWith::skip)
    /// exact over any span that ends at or before the reported horizon.
    fn dormant_until(&self, now: u64) -> u64 {
        if self.quiescent() {
            self.next_event(now)
        } else {
            now
        }
    }
}

/// The single generic cycle driver.
///
/// Every `run`/`run_until` loop in the workspace routes through these
/// associated functions; no component carries its own driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine;

impl Engine {
    /// Advances `fabric` by exactly one cycle: emit, then absorb.
    #[inline]
    pub fn tick<C: Clocked + ?Sized>(fabric: &mut C) {
        fabric.emit();
        fabric.absorb();
    }

    /// Runs `cycles` cycles.
    ///
    /// When the fabric reports itself quiescent and at least one whole slot
    /// remains, the cycles up to the fabric's [`Clocked::next_event`]
    /// horizon are batched into one [`Clocked::skip`] — quiescence cannot
    /// end before that horizon without external input, so the skip is
    /// exact, not approximate. A fully drained fabric (horizon `u64::MAX`)
    /// skips everything that remains in one call.
    pub fn run<C: Clocked + ?Sized>(fabric: &mut C, cycles: u64) {
        let mut remaining = cycles;
        while remaining > 0 {
            if remaining >= SLOT_WORDS && fabric.quiescent() {
                let now = fabric.now();
                let chunk = remaining.min(fabric.next_event(now).saturating_sub(now));
                if chunk >= SLOT_WORDS {
                    fabric.skip(chunk);
                    remaining -= chunk;
                    continue;
                }
            }
            Self::tick(fabric);
            remaining -= 1;
        }
    }

    /// Runs until `pred` holds or `max_cycles` elapse; returns whether the
    /// predicate was met.
    ///
    /// The predicate observes **every** cycle boundary, so the stopping
    /// cycle is exact for any predicate. While the fabric is quiescent the
    /// tick is replaced by a `skip(1)` — state-identical by the quiescence
    /// contract, but without the per-cycle emit/absorb walk — so long waits
    /// on an idle system no longer pay for full ticks. For cycle-driven
    /// predicates that tolerate coarser stopping points, see
    /// [`Engine::run_until_horizon`].
    pub fn run_until<C, P>(fabric: &mut C, mut pred: P, max_cycles: u64) -> bool
    where
        C: Clocked + ?Sized,
        P: FnMut(&C) -> bool,
    {
        for _ in 0..max_cycles {
            if pred(fabric) {
                return true;
            }
            if fabric.quiescent() {
                fabric.skip(1);
            } else {
                Self::tick(fabric);
            }
        }
        pred(fabric)
    }

    /// Like [`Engine::run_until`], but batches quiescent stretches up to
    /// the [`Clocked::next_event`] horizon between predicate checks — the
    /// explicit opt-in for **cycle-driven** predicates (monotone once-true
    /// conditions such as "enough cycles elapsed" or "workload done").
    ///
    /// While the fabric is quiescent the predicate is *not* evaluated at
    /// every intermediate cycle, so the stopping cycle may overshoot the
    /// predicate's first-true cycle — by at most the distance to the next
    /// event horizon (or `max_cycles`). State-inspecting predicates that
    /// need the exact boundary belong on [`Engine::run_until`].
    pub fn run_until_horizon<C, P>(fabric: &mut C, mut pred: P, max_cycles: u64) -> bool
    where
        C: Clocked + ?Sized,
        P: FnMut(&C) -> bool,
    {
        let mut remaining = max_cycles;
        while remaining > 0 {
            if pred(fabric) {
                return true;
            }
            if remaining >= SLOT_WORDS && fabric.quiescent() {
                let now = fabric.now();
                let chunk = remaining.min(fabric.next_event(now).saturating_sub(now));
                if chunk >= SLOT_WORDS {
                    fabric.skip(chunk);
                    remaining -= chunk;
                    continue;
                }
            }
            Self::tick(fabric);
            remaining -= 1;
        }
        pred(fabric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fabric that counts phase calls and can pretend to be quiescent.
    struct Probe {
        cycle: u64,
        emits: u64,
        absorbs: u64,
        skipped: u64,
        skip_calls: u64,
        quiescent_after: u64,
        /// Spontaneous-event schedule: while quiescent, the next event is
        /// the first entry after the current cycle (`u64::MAX` beyond).
        events: Vec<u64>,
    }

    impl Probe {
        fn new(quiescent_after: u64) -> Self {
            Probe {
                cycle: 0,
                emits: 0,
                absorbs: 0,
                skipped: 0,
                skip_calls: 0,
                quiescent_after,
                events: Vec::new(),
            }
        }
    }

    impl Clocked for Probe {
        fn now(&self) -> u64 {
            self.cycle
        }

        fn emit(&mut self) {
            assert_eq!(self.emits, self.absorbs, "emit must precede absorb");
            self.emits += 1;
        }

        fn absorb(&mut self) {
            assert_eq!(self.emits, self.absorbs + 1, "absorb follows emit");
            self.absorbs += 1;
            self.cycle += 1;
        }

        fn quiescent(&self) -> bool {
            self.cycle >= self.quiescent_after && !self.events.contains(&self.cycle)
        }

        fn skip(&mut self, cycles: u64) {
            self.skipped += cycles;
            self.skip_calls += 1;
            self.cycle += cycles;
        }

        fn next_event(&self, now: u64) -> u64 {
            self.events
                .iter()
                .copied()
                .filter(|&e| e > now)
                .min()
                .unwrap_or(u64::MAX)
        }
    }

    #[test]
    fn tick_orders_phases() {
        let mut p = Probe::new(u64::MAX);
        Engine::tick(&mut p);
        assert_eq!((p.emits, p.absorbs, p.now()), (1, 1, 1));
    }

    #[test]
    fn run_ticks_until_quiescent_then_skips() {
        let mut p = Probe::new(5);
        Engine::run(&mut p, 100);
        assert_eq!(p.now(), 100);
        assert_eq!(p.emits, 5, "ticked only while active");
        assert_eq!(p.skipped, 95, "rest batched into one skip");
    }

    #[test]
    fn run_never_skips_below_a_slot() {
        let mut p = Probe::new(0);
        Engine::run(&mut p, SLOT_WORDS - 1);
        assert_eq!(p.skipped, 0);
        assert_eq!(p.emits, SLOT_WORDS - 1);
    }

    #[test]
    fn run_skips_only_to_the_next_event_horizon() {
        let mut p = Probe::new(0);
        p.events = vec![40, 80];
        Engine::run(&mut p, 100);
        assert_eq!(p.now(), 100);
        // Three quiescent stretches ([0,40), [41,80), [81,100)), one skip
        // each, plus one real tick at each event cycle.
        assert_eq!(p.skip_calls, 3, "one batched skip per idle stretch");
        assert_eq!(p.emits, 2, "ticked exactly at the event cycles");
        assert_eq!(p.skipped, 98);
    }

    #[test]
    fn until_pred_stops_exactly_and_replaces_idle_ticks_with_unit_skips() {
        let mut p = Probe::new(0); // quiescent from the start
        let met = Engine::run_until(&mut p, |f| f.now() >= 7, 100);
        assert!(met);
        assert_eq!(p.now(), 7, "stops on the exact cycle");
        assert_eq!(p.emits, 0, "quiescent cycles never pay for a full tick");
        assert_eq!(p.skipped, 7, "advanced by unit skips instead");
        assert_eq!(p.skip_calls, 7, "…observing every cycle boundary");
    }

    #[test]
    fn until_pred_times_out() {
        let mut p = Probe::new(u64::MAX);
        let met = Engine::run_until(&mut p, |_| false, 9);
        assert!(!met);
        assert_eq!(p.now(), 9);
        assert_eq!(p.emits, 9, "active fabric is fully ticked");
    }

    #[test]
    fn until_horizon_batches_idle_stretches() {
        let mut p = Probe::new(0);
        p.events = vec![50];
        let met = Engine::run_until_horizon(&mut p, |f| f.now() >= 80, 1_000);
        assert!(met);
        // One batch to the event at 50, a tick there, then one batch that
        // overshoots the predicate's first-true cycle — stopping at the
        // horizon bound (here: max_cycles), as documented.
        assert!(p.now() >= 80);
        assert_eq!(p.emits, 1, "only the event cycle is ticked");
        assert!(
            p.skip_calls <= 2,
            "idle stretches batched: {}",
            p.skip_calls
        );
    }

    #[test]
    fn until_horizon_checks_pred_between_batches() {
        let mut p = Probe::new(0);
        p.events = vec![30];
        // Predicate becomes true exactly at the event cycle: the batch ends
        // there, the check fires before any further work.
        let met = Engine::run_until_horizon(&mut p, |f| f.now() >= 30, 1_000);
        assert!(met);
        assert_eq!(p.now(), 30, "stops at the horizon boundary");
        assert_eq!(p.emits, 0);
    }

    #[test]
    fn clock_domain_edges() {
        let d = ClockDomain::new(3);
        assert!(d.ticks_at(0) && d.ticks_at(3) && !d.ticks_at(4));
        assert_eq!(d.next_edge(0), 0);
        assert_eq!(d.next_edge(1), 3);
        assert_eq!(d.next_edge(3), 3);
        assert_eq!(d.edges_in(0, 9), 3);
        assert_eq!(d.edges_in(1, 3), 1); // only cycle 3
        assert_eq!(d.edges_in(4, 2), 0);
        assert_eq!(d.local_now(8), 2);
        assert_eq!(ClockDomain::BASE.edges_in(17, 5), 5);
    }

    #[test]
    #[should_panic(expected = "divisor")]
    fn zero_divisor_panics() {
        let _ = ClockDomain::new(0);
    }
}
