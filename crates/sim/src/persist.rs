//! Full-state persistence: the audited serialization walk behind
//! snapshot/restore.
//!
//! The paper's "flexible network configuration" story (§4) implies a
//! network whose complete state is inspectable and reconstructible; this
//! module is the engine-level half of that capability. It follows the same
//! *audited-walk* discipline as the fast-forward layer ([`crate::ff`]):
//! every persistable component implements [`Persist`] with **one**
//! deterministic traversal of its dynamic fields, and the same walk serves
//! both directions — a [`StateSaver`] records each visited item, a
//! [`StateLoader`] replays the recorded items in the identical order. A
//! field that is not visited is a structurally visible omission (the walk
//! sits next to the struct definition, and the `xtask lint` persist audit
//! cross-checks field counts), the same argument that keeps `ff_visit`
//! honest.
//!
//! What gets visited: *dynamic* state only — cycle counters, queue
//! contents, in-flight words, credit counters, RNG state, runtime-written
//! registers (routes, slot tables, channel control words). Structural
//! state (topology, capacities, specs, bindings) is deliberately absent:
//! a snapshot restores onto a freshly built, identically-specified target,
//! so everything derivable from the spec never enters the item stream.
//! Derived caches (visibility memos, ready masks rebuilt from visited
//! state) are reset or re-derived by the restoring walk instead of being
//! persisted.
//!
//! The item stream is a flat `Vec<u64>` per component — lossless in the
//! hand-rolled JSON layer (`aethereal-cfg`'s `Value::Num` is `u64`) and
//! byte-stable across runs, which is what lets golden snapshots be
//! checked in and diffed. In-flight words travel as
//! [`LinkWord::pack_u64`] (zero = no word); lengths travel in-stream via
//! [`PersistVisit::len`], which is also what lets one walk resize
//! collections on restore.

use crate::ring::Ring;
use crate::word::LinkWord;

/// Error produced when a save or restore walk cannot complete: a component
/// declared itself unpersistable, the item stream ran dry, or items were
/// left over (a walk/snapshot shape mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// Human-readable description of what went wrong.
    pub msg: String,
}

impl PersistError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        PersistError { msg: msg.into() }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for PersistError {}

/// The persistence visitor: one deterministic traversal of a component's
/// dynamic state, usable for both capture and restore.
///
/// The traversal must visit the same items in the same order for any two
/// states of the same structure — collection *contents* may differ, but
/// every length difference must flow through [`PersistVisit::len`] so the
/// restoring walk can resize before visiting elements.
pub trait PersistVisit {
    /// Visits one 64-bit state item: recorded on save, overwritten on
    /// restore.
    fn item(&mut self, v: &mut u64);

    /// Visits a collection length. On save this records `cur` and returns
    /// it unchanged; on restore it returns the recorded length, which the
    /// walk must apply (resize/rebuild) before visiting the elements.
    fn len(&mut self, cur: usize) -> usize;

    /// Marks state this walk cannot persist (an IP model without a persist
    /// audit, a snapshot that does not fit the target's capacities):
    /// poisons the save or restore, which then reports an error instead of
    /// producing a half-true snapshot.
    fn fail(&mut self, why: &str);
}

/// A component whose complete dynamic state can be walked through a
/// [`PersistVisit`] — the snapshot/restore analogue of
/// [`FastForwardable`](crate::ff::FastForwardable)'s `ff_visit`.
pub trait Persist {
    /// Walks every dynamic field, in a fixed order, through `p`.
    fn persist(&mut self, p: &mut dyn PersistVisit);
}

/// The capturing visitor: records each visited item into a flat stream.
#[derive(Debug, Default)]
pub struct StateSaver {
    items: Vec<u64>,
    error: Option<String>,
}

impl StateSaver {
    /// Creates an empty saver.
    pub fn new() -> Self {
        StateSaver::default()
    }

    /// The recorded item stream.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if any visited component called
    /// [`PersistVisit::fail`].
    pub fn finish(self) -> Result<Vec<u64>, PersistError> {
        match self.error {
            Some(msg) => Err(PersistError::new(msg)),
            None => Ok(self.items),
        }
    }
}

impl PersistVisit for StateSaver {
    fn item(&mut self, v: &mut u64) {
        self.items.push(*v);
    }

    fn len(&mut self, cur: usize) -> usize {
        self.items.push(cur as u64);
        cur
    }

    fn fail(&mut self, why: &str) {
        if self.error.is_none() {
            self.error = Some(why.to_string());
        }
    }
}

/// The restoring visitor: replays a recorded item stream into the same
/// walk that produced it.
#[derive(Debug)]
pub struct StateLoader {
    items: Vec<u64>,
    at: usize,
    error: Option<String>,
}

impl StateLoader {
    /// Creates a loader over a recorded item stream.
    pub fn new(items: Vec<u64>) -> Self {
        StateLoader {
            items,
            at: 0,
            error: None,
        }
    }

    /// Reads the next recorded item, or fails the load.
    fn next(&mut self) -> Option<u64> {
        match self.items.get(self.at) {
            Some(&v) => {
                self.at += 1;
                Some(v)
            }
            None => {
                self.fail("snapshot item stream exhausted (walk/snapshot shape mismatch)");
                None
            }
        }
    }

    /// Completes the load.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the walk failed, ran past the end of
    /// the stream, or left recorded items unconsumed — all three mean the
    /// snapshot does not match the target's walk.
    pub fn finish(self) -> Result<(), PersistError> {
        if let Some(msg) = self.error {
            return Err(PersistError::new(msg));
        }
        if self.at != self.items.len() {
            return Err(PersistError::new(format!(
                "snapshot carries {} unconsumed item(s) (walk/snapshot shape mismatch)",
                self.items.len() - self.at
            )));
        }
        Ok(())
    }
}

impl PersistVisit for StateLoader {
    fn item(&mut self, v: &mut u64) {
        if let Some(x) = self.next() {
            *v = x;
        }
    }

    fn len(&mut self, _cur: usize) -> usize {
        match self.next() {
            Some(n) => {
                // Every element of a recorded collection consumes at least
                // one stream item, so a legitimate length can never exceed
                // what is left. Rejecting larger values here keeps a
                // corrupted or malicious snapshot from driving a huge
                // `Vec::resize` (memory exhaustion) before the element walk
                // would notice the underrun.
                let remaining = (self.items.len() - self.at) as u64;
                if n > remaining {
                    self.fail(
                        "snapshot length exceeds remaining items \
                         (truncated or corrupt snapshot)",
                    );
                    return 0;
                }
                usize::try_from(n).unwrap_or_else(|_| {
                    self.fail("snapshot length does not fit usize");
                    0
                })
            }
            None => 0,
        }
    }

    fn fail(&mut self, why: &str) {
        if self.error.is_none() {
            self.error = Some(why.to_string());
        }
    }
}

// ---- Field helpers ------------------------------------------------------

/// Persists a `u32` (widened in the stream; a recorded value that does not
/// fit fails the restore).
pub fn persist_u32(v: &mut u32, p: &mut dyn PersistVisit) {
    let mut w = u64::from(*v);
    p.item(&mut w);
    match u32::try_from(w) {
        Ok(x) => *v = x,
        Err(_) => p.fail("snapshot item does not fit u32"),
    }
}

/// Persists a `u16` (widened in the stream).
pub fn persist_u16(v: &mut u16, p: &mut dyn PersistVisit) {
    let mut w = u64::from(*v);
    p.item(&mut w);
    match u16::try_from(w) {
        Ok(x) => *v = x,
        Err(_) => p.fail("snapshot item does not fit u16"),
    }
}

/// Persists a `u8` (widened in the stream).
pub fn persist_u8(v: &mut u8, p: &mut dyn PersistVisit) {
    let mut w = u64::from(*v);
    p.item(&mut w);
    match u8::try_from(w) {
        Ok(x) => *v = x,
        Err(_) => p.fail("snapshot item does not fit u8"),
    }
}

/// Persists a `usize` (widened in the stream).
pub fn persist_usize(v: &mut usize, p: &mut dyn PersistVisit) {
    let mut w = *v as u64;
    p.item(&mut w);
    match usize::try_from(w) {
        Ok(x) => *v = x,
        Err(_) => p.fail("snapshot item does not fit usize"),
    }
}

/// Persists a `bool` (0/1 in the stream; anything else fails the restore).
pub fn persist_bool(v: &mut bool, p: &mut dyn PersistVisit) {
    let mut w = u64::from(*v);
    p.item(&mut w);
    match w {
        0 => *v = false,
        1 => *v = true,
        _ => p.fail("snapshot item is not a bool"),
    }
}

/// Persists an `Option<usize>` as `0` = `None`, `i + 1` = `Some(i)` — the
/// same encoding `ff_visit` uses for port options.
pub fn persist_opt_usize(v: &mut Option<usize>, p: &mut dyn PersistVisit) {
    let mut w = v.map_or(0, |x| x as u64 + 1);
    p.item(&mut w);
    *v = if w == 0 { None } else { Some((w - 1) as usize) };
}

/// Persists an in-flight word via [`LinkWord::pack_u64`].
pub fn persist_word(w: &mut LinkWord, p: &mut dyn PersistVisit) {
    let mut packed = w.pack_u64();
    p.item(&mut packed);
    match LinkWord::unpack_u64(packed) {
        Some(x) => *w = x,
        None => p.fail("snapshot item is not a packed link word"),
    }
}

/// Persists a maybe-present word; `0` is the empty encoding.
pub fn persist_opt_word(w: &mut Option<LinkWord>, p: &mut dyn PersistVisit) {
    let mut packed = w.map_or(0, LinkWord::pack_u64);
    p.item(&mut packed);
    *w = LinkWord::unpack_u64(packed);
}

/// Persists a list of plain `u64` items, resizing on restore.
pub fn persist_u64_list(v: &mut Vec<u64>, p: &mut dyn PersistVisit) {
    let n = p.len(v.len());
    v.resize(n, 0);
    for x in v.iter_mut() {
        p.item(x);
    }
}

/// Persists a list of 32-bit words (message buffers, payload data),
/// resizing on restore.
pub fn persist_u32_list(v: &mut Vec<u32>, p: &mut dyn PersistVisit) {
    let n = p.len(v.len());
    v.resize(n, 0);
    for x in v.iter_mut() {
        persist_u32(x, p);
    }
}

/// Persists a list of `usize` items (the dirty-boundary lists), resizing
/// on restore.
pub fn persist_usize_list(v: &mut Vec<usize>, p: &mut dyn PersistVisit) {
    let n = p.len(v.len());
    v.resize(n, 0);
    for x in v.iter_mut() {
        persist_usize(x, p);
    }
}

/// Persists a fixed-capacity ring: length in-stream, then each element
/// through `each`. On restore the ring is rebuilt from `default` elements
/// (overwritten by the element walk); a recorded length beyond the ring's
/// capacity fails the restore — the snapshot was taken on a
/// differently-configured network.
pub fn persist_ring<T: Copy>(
    ring: &mut Ring<T>,
    default: T,
    p: &mut dyn PersistVisit,
    mut each: impl FnMut(&mut T, &mut dyn PersistVisit),
) {
    let n = p.len(ring.len());
    if n != ring.len() {
        ring.clear();
        for _ in 0..n {
            if ring.push_back(default).is_err() {
                p.fail("snapshot ring contents exceed the target's capacity");
                return;
            }
        }
    }
    for i in 0..ring.len() {
        each(ring.get_mut(i).expect("index in range"), p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::WordClass;

    #[test]
    fn save_then_load_round_trips_scalars() {
        struct S {
            a: u64,
            b: u32,
            c: bool,
            d: Option<usize>,
        }
        impl Persist for S {
            fn persist(&mut self, p: &mut dyn PersistVisit) {
                p.item(&mut self.a);
                persist_u32(&mut self.b, p);
                persist_bool(&mut self.c, p);
                persist_opt_usize(&mut self.d, p);
            }
        }
        let mut src = S {
            a: 7,
            b: 9,
            c: true,
            d: Some(3),
        };
        let mut saver = StateSaver::new();
        src.persist(&mut saver);
        let items = saver.finish().unwrap();
        let mut dst = S {
            a: 0,
            b: 0,
            c: false,
            d: None,
        };
        let mut loader = StateLoader::new(items);
        dst.persist(&mut loader);
        loader.finish().unwrap();
        assert_eq!((dst.a, dst.b, dst.c, dst.d), (7, 9, true, Some(3)));
    }

    #[test]
    fn loader_rejects_underrun_and_leftovers() {
        let mut loader = StateLoader::new(vec![1]);
        let mut a = 0u64;
        let mut b = 0u64;
        loader.item(&mut a);
        loader.item(&mut b); // exhausted
        assert!(loader.finish().is_err());

        let mut loader = StateLoader::new(vec![1, 2]);
        let mut a = 0u64;
        loader.item(&mut a);
        assert!(loader.finish().is_err(), "leftover item must be an error");
    }

    #[test]
    fn loader_rejects_oversized_lengths_without_allocating() {
        // A corrupt stream claiming a huge collection must fail
        // structurally instead of attempting a giant `resize`.
        let mut v: Vec<u64> = vec![1, 2];
        let mut loader = StateLoader::new(vec![u64::MAX, 1, 2]);
        persist_u64_list(&mut v, &mut loader);
        assert!(v.is_empty(), "rejected length resizes to zero, not huge");
        assert!(loader.finish().is_err());
    }

    #[test]
    fn saver_fail_poisons_the_snapshot() {
        let mut saver = StateSaver::new();
        let mut v = 1u64;
        saver.item(&mut v);
        saver.fail("component is not persistable");
        assert!(saver.finish().is_err());
    }

    #[test]
    fn word_helpers_round_trip() {
        let w = LinkWord::header(0xABCD_EF01, WordClass::Guaranteed);
        let mut state = Some(w);
        let mut saver = StateSaver::new();
        persist_opt_word(&mut state, &mut saver);
        let mut none: Option<LinkWord> = None;
        persist_opt_word(&mut none, &mut saver);
        let items = saver.finish().unwrap();
        let mut loader = StateLoader::new(items);
        let mut got: Option<LinkWord> = None;
        let mut got_none = Some(w);
        persist_opt_word(&mut got, &mut loader);
        persist_opt_word(&mut got_none, &mut loader);
        loader.finish().unwrap();
        assert_eq!(got, Some(w));
        assert_eq!(got_none, None);
    }

    #[test]
    fn ring_resizes_on_restore_and_respects_capacity() {
        let mut src: Ring<u64> = Ring::with_capacity(4);
        for v in [10, 20, 30] {
            src.push_back(v).unwrap();
        }
        let mut saver = StateSaver::new();
        persist_ring(&mut src, 0, &mut saver, |v, p| p.item(v));
        let items = saver.finish().unwrap();

        let mut dst: Ring<u64> = Ring::with_capacity(4);
        dst.push_back(99).unwrap();
        let mut loader = StateLoader::new(items.clone());
        persist_ring(&mut dst, 0, &mut loader, |v, p| p.item(v));
        loader.finish().unwrap();
        assert_eq!(dst.iter().copied().collect::<Vec<_>>(), vec![10, 20, 30]);

        // A snapshot that does not fit the target's capacity must fail,
        // not truncate.
        let mut tiny: Ring<u64> = Ring::with_capacity(2);
        let mut loader = StateLoader::new(items);
        persist_ring(&mut tiny, 0, &mut loader, |v, p| p.item(v));
        assert!(loader.finish().is_err());
    }
}
