//! Property-based tests of the substrate's encodings and transport
//! invariants.

use aethereal_testkit::prelude::*;
use noc_sim::engine::ClockDomain;
use noc_sim::{LinkWord, Noc, PacketHeader, Path, Topology, WordClass};

fn arb_path() -> impl Strategy<Value = Path> {
    prop::collection::vec(0u8..=5, 0..=7).prop_map(|hops| Path::new(&hops).expect("valid hops"))
}

fn arb_header() -> impl Strategy<Value = PacketHeader> {
    (arb_path(), 0u8..32, 0u32..32, any::<bool>()).prop_map(|(path, qid, credits, flush)| {
        PacketHeader {
            path,
            qid,
            credits,
            flush,
        }
    })
}

proptest! {
    #[test]
    fn path_encode_decode_roundtrip(path in arb_path()) {
        prop_assert_eq!(Path::decode(path.encode()), path);
    }

    #[test]
    fn path_shift_consumes_hops_in_order(path in arb_path()) {
        let mut bits = path.encode();
        for hop in path.iter() {
            prop_assert_eq!(Path::peek_encoded(bits), Some(hop));
            bits = Path::shift_encoded(bits);
        }
        prop_assert_eq!(Path::peek_encoded(bits), None);
    }

    #[test]
    fn header_pack_unpack_roundtrip(h in arb_header()) {
        prop_assert_eq!(PacketHeader::unpack(h.pack()), h);
    }

    #[test]
    fn header_shift_preserves_non_path_fields(h in arb_header()) {
        let shifted = PacketHeader::unpack(Path::shift_header(h.pack()));
        prop_assert_eq!(shifted.qid, h.qid);
        prop_assert_eq!(shifted.credits, h.credits);
        prop_assert_eq!(shifted.flush, h.flush);
        let expected: Vec<_> = h.path.iter().skip(1).collect();
        let got: Vec<_> = shifted.path.iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn field_extractors_agree_with_unpack(h in arb_header()) {
        let w = h.pack();
        prop_assert_eq!(u32::from(PacketHeader::qid_of(w)), u32::from(h.qid));
        prop_assert_eq!(PacketHeader::credits_of(w), h.credits);
    }

    #[test]
    fn mesh_routes_always_terminate_at_target(
        w in 1usize..=4,
        h in 1usize..=4,
        from_seed in any::<u32>(),
        to_seed in any::<u32>(),
    ) {
        let topo = Topology::mesh(w, h, 1);
        let n = topo.ni_count();
        let from = from_seed as usize % n;
        let to = to_seed as usize % n;
        let path = topo.route(from, to).expect("mesh routes always exist");
        // Walk the route through the topology; it must end ejecting at the
        // router where `to` attaches.
        let (mut router, _) = topo.ni_attachment(from).expect("from exists");
        let hops: Vec<_> = path.iter().collect();
        for (i, &hop) in hops.iter().enumerate() {
            if i + 1 == hops.len() {
                prop_assert_eq!(topo.ni_at(router, hop), Some(to));
            } else {
                let (next, _) = topo.neighbour(router, hop).expect("interior hop is a link");
                router = next;
            }
        }
    }

    #[test]
    fn xy_routes_are_minimal(
        w in 1usize..=4,
        h in 1usize..=4,
        from_seed in any::<u32>(),
        to_seed in any::<u32>(),
    ) {
        let topo = Topology::mesh(w, h, 1);
        let n = topo.ni_count();
        let from = from_seed as usize % n;
        let to = to_seed as usize % n;
        let path = topo.route(from, to).expect("route exists");
        let (fx, fy) = (from % w, from / w);
        let (tx, ty) = (to % w, to / w);
        let manhattan = fx.abs_diff(tx) + fy.abs_diff(ty);
        prop_assert_eq!(path.hops(), manhattan + 1, "link hops + ejection");
    }

    #[test]
    fn be_transport_is_lossless_ordered_uncorrupted(
        payload in prop::collection::vec(any::<u32>(), 1..24),
        qid in 0u8..8,
    ) {
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let path = topo.route(0, 3).expect("route exists");
        let header = PacketHeader { path, qid, credits: 0, flush: false };
        let mut words = vec![LinkWord::header(header.pack(), WordClass::BestEffort)];
        for (i, &p) in payload.iter().enumerate() {
            words.push(LinkWord::payload(p, WordClass::BestEffort, i + 1 == payload.len()));
        }
        let mut sent = 0usize;
        let mut got = Vec::new();
        for _ in 0..600 {
            {
                let link = noc.ni_link_mut(0);
                if sent < words.len() && !link.is_busy() && link.be_credits() > 0 {
                    link.send(words[sent]);
                    sent += 1;
                }
            }
            noc.tick();
            while let Some(wd) = noc.ni_link_mut(3).recv() {
                got.push(wd);
            }
        }
        prop_assert_eq!(got.len(), words.len());
        prop_assert!(got[0].is_header());
        prop_assert_eq!(PacketHeader::qid_of(got[0].word()), qid);
        let got_payload: Vec<u32> = got[1..].iter().map(|w| w.word()).collect();
        prop_assert_eq!(got_payload, payload);
        prop_assert!(got.last().expect("non-empty").is_tail());
        prop_assert_eq!(noc.be_overflows(), 0);
    }

    #[test]
    fn gt_pipelined_slots_never_conflict_when_offsets_differ(
        offset_a in 0u64..8,
        offset_delta in 1u64..4,
        rounds in 1u64..6,
    ) {
        // Two GT flows sharing the router1→router3 link of a 2x2 mesh.
        // Flow A (NI0, 2 hops to the shared link) injected at slot s lands
        // in slot s+2; flow B (NI1, 1 hop) at slot s' lands in s'+1.
        // Any s' with s'+1 ≢ s+2 (mod table) is conflict-free; we use
        // distinct per-round slots in a 8-slot frame.
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let pa = topo.route(0, 3).expect("route");
        let pb = topo.route(1, 3).expect("route");
        let slot_a = offset_a % 8;
        let slot_b = (offset_a + offset_delta) % 8; // s' = s+Δ, Δ∈1..4 ⇒ s'+1 ≠ s+2 unless Δ=1
        prop_assume!((slot_b + 1) % 8 != (slot_a + 2) % 8);
        let ha = PacketHeader { path: pa, qid: 0, credits: 0, flush: false };
        let hb = PacketHeader { path: pb, qid: 1, credits: 0, flush: false };
        for _round in 0..rounds {
            // One 8-slot frame: emit A's flit at slot_a, B's at slot_b.
            for slot in 0..8u64 {
                for c in 0..3u64 {
                    if slot == slot_a && c == 0 {
                        noc.ni_link_mut(0).send(LinkWord::header_only(
                            ha.pack(),
                            WordClass::Guaranteed,
                        ));
                    }
                    if slot == slot_b && c == 0 {
                        noc.ni_link_mut(1).send(LinkWord::header_only(
                            hb.pack(),
                            WordClass::Guaranteed,
                        ));
                    }
                    noc.tick();
                }
            }
        }
        noc.run(60);
        prop_assert_eq!(noc.gt_conflicts(), 0);
        let mut a = 0u64;
        let mut b = 0u64;
        while let Some(w) = noc.ni_link_mut(3).recv() {
            match PacketHeader::qid_of(w.word()) {
                0 => a += 1,
                1 => b += 1,
                _ => prop_assert!(false, "unexpected qid"),
            }
        }
        prop_assert_eq!(a, rounds);
        prop_assert_eq!(b, rounds);
    }
}

proptest! {
    /// `edges_in` agrees with a brute-force count of `ticks_at` edges.
    #[test]
    fn clock_domain_edges_match_brute_force(
        div in 1u32..=17,
        start in 0u64..1000,
        len in 0u64..200,
    ) {
        let d = ClockDomain::new(div);
        let brute = (start..start + len).filter(|&c| d.ticks_at(c)).count() as u64;
        prop_assert_eq!(d.edges_in(start, len), brute);
    }

    /// Edge counting is additive over adjacent windows.
    #[test]
    fn clock_domain_edges_are_additive(
        div in 1u32..=17,
        start in 0u64..1000,
        a in 0u64..200,
        b in 0u64..200,
    ) {
        let d = ClockDomain::new(div);
        prop_assert_eq!(
            d.edges_in(start, a + b),
            d.edges_in(start, a) + d.edges_in(start + a, b)
        );
    }

    /// `next_edge` returns the first edge at or after the query cycle.
    #[test]
    fn clock_domain_next_edge_is_tight(div in 1u32..=17, cycle in 0u64..2000) {
        let d = ClockDomain::new(div);
        let e = d.next_edge(cycle);
        prop_assert!(e >= cycle);
        prop_assert!(d.ticks_at(e));
        prop_assert_eq!(d.edges_in(cycle, e - cycle), 0, "no edge before it");
    }

    /// Local time advances exactly on edges: after `n` base cycles the
    /// domain has seen `edges_in(0, n)` edges, which equals `local_now`
    /// rounded the same way the divider hardware does.
    #[test]
    fn clock_domain_local_time_consistent(div in 1u32..=17, n in 0u64..5000) {
        let d = ClockDomain::new(div);
        prop_assert_eq!(d.edges_in(0, n), n.div_ceil(u64::from(div)));
        prop_assert_eq!(d.local_now(n), n / u64::from(div));
    }
}

/// Replays a (possibly multi-segment) route hop by hop through the
/// topology: every non-final hop must cross a real inter-router edge, the
/// final hop must eject into the destination NI.
fn route_is_walkable(topo: &Topology, from: usize, to: usize, route: &noc_sim::Route) {
    let (mut r, _) = topo.ni_attachment(from).expect("source NI");
    let hops: Vec<_> = route.iter_hops().collect();
    for (i, &hop) in hops.iter().enumerate() {
        if i + 1 == hops.len() {
            assert_eq!(topo.ni_at(r, hop), Some(to), "last hop ejects at dest");
        } else {
            let (nr, _) = topo
                .neighbour(r, hop)
                .expect("non-final hops cross router edges");
            r = nr;
        }
    }
}

proptest! {
    /// Any-pair routes on 4x4–16x16 meshes are walkable, minimal-length
    /// (XY distance + ejection), within the segment encoding limits, and
    /// split only when they exceed one header.
    #[test]
    fn route_any_is_valid_minimal_and_splits_only_when_needed(
        width in 4usize..=16,
        height in 4usize..=16,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let topo = Topology::mesh(width, height, 1);
        let n = width * height;
        let from = (a % n as u64) as usize;
        let to = (b % n as u64) as usize;
        let route = topo.route_any(from, to).expect("any pair routes");
        let (fx, fy) = (from % width, from / width);
        let (tx, ty) = (to % width, to / width);
        let minimal = fx.abs_diff(tx) + fy.abs_diff(ty) + 1;
        prop_assert_eq!(route.total_hops(), minimal, "minimal XY length");
        prop_assert_eq!(
            route.is_single(),
            minimal <= noc_sim::MAX_HOPS,
            "split exactly when one header is not enough"
        );
        prop_assert!(route.segments().len() <= noc_sim::MAX_ROUTE_SEGMENTS);
        for (i, seg) in route.segments().iter().enumerate() {
            prop_assert!(seg.hops() <= noc_sim::MAX_HOPS);
            prop_assert!(!seg.is_empty(), "segment {} empty", i);
        }
        route_is_walkable(&topo, from, to, &route);
    }

    /// Declaring region gateways steers split points but never changes the
    /// hop sequence — routes stay minimal and walkable, and every split
    /// lands on a gateway whenever one lies in the search window.
    #[test]
    fn region_gateways_never_change_route_length(
        bands in 2usize..=4,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let width = 8;
        let height = 8;
        let n = width * height;
        let rows_per_band = height / bands;
        let region_of: Vec<usize> = (0..n)
            .map(|r| usize::min((r / width) / rows_per_band, bands - 1))
            .collect();
        // Gateway: first router of each band's first row.
        let gateways: Vec<usize> = (0..bands).map(|g| g * rows_per_band * width).collect();
        let regions = noc_sim::Regions::new(region_of, gateways).expect("valid bands");
        let plain = Topology::mesh(width, height, 1);
        let regioned = Topology::mesh(width, height, 1).with_regions(regions);
        let from = (a % n as u64) as usize;
        let to = (b % n as u64) as usize;
        let r1 = plain.route_any(from, to).expect("routes");
        let r2 = regioned.route_any(from, to).expect("routes");
        prop_assert_eq!(
            r1.iter_hops().collect::<Vec<_>>(),
            r2.iter_hops().collect::<Vec<_>>(),
            "same minimal hop sequence"
        );
        route_is_walkable(&regioned, from, to, &r2);
    }
}
