//! Stress tests of the router network: many flows, shared links, mixed
//! classes — checking losslessness, ordering, class isolation and the
//! contention invariants under sustained load.

use noc_sim::{LinkWord, Noc, PacketHeader, Path, Rng64, Topology, WordClass, SLOT_WORDS};

/// A BE packet as link words.
fn be_packet(path: Path, qid: u8, payload: &[u32]) -> Vec<LinkWord> {
    let h = PacketHeader {
        path,
        qid,
        credits: 0,
        flush: false,
    };
    if payload.is_empty() {
        return vec![LinkWord::header_only(h.pack(), WordClass::BestEffort)];
    }
    let mut v = vec![LinkWord::header(h.pack(), WordClass::BestEffort)];
    for (i, &w) in payload.iter().enumerate() {
        v.push(LinkWord::payload(
            w,
            WordClass::BestEffort,
            i + 1 == payload.len(),
        ));
    }
    v
}

#[test]
fn all_to_one_be_hotspot_is_lossless() {
    // Every NI of a 3x3 mesh sends packets to NI 4 (the centre) — a classic
    // hotspot. All packets must arrive whole and unreordered per source.
    let topo = Topology::mesh(3, 3, 1);
    let mut noc = Noc::new(&topo);
    let n = topo.ni_count();
    let target = 4usize;
    let packets_per_src = 12usize;
    let payload_len = 5usize;
    // Per-source word streams, tag = (src << 16) | seq.
    let mut streams: Vec<Vec<LinkWord>> = Vec::new();
    for src in 0..n {
        let mut words = Vec::new();
        if src == target {
            streams.push(words);
            continue;
        }
        for p in 0..packets_per_src {
            let payload: Vec<u32> = (0..payload_len)
                .map(|i| ((src as u32) << 16) | ((p * payload_len + i) as u32))
                .collect();
            words.extend(be_packet(
                topo.route(src, target).expect("route"),
                (src % 32) as u8,
                &payload,
            ));
        }
        streams.push(words);
    }
    let mut sent = vec![0usize; n];
    let mut received: Vec<LinkWord> = Vec::new();
    for _ in 0..60_000 {
        for src in 0..n {
            if sent[src] < streams[src].len() {
                let link = noc.ni_link_mut(src);
                if !link.is_busy() && link.be_credits() > 0 {
                    link.send(streams[src][sent[src]]);
                    sent[src] += 1;
                }
            }
        }
        noc.tick();
        while let Some(w) = noc.ni_link_mut(target).recv() {
            received.push(w);
        }
        if sent.iter().enumerate().all(|(s, &k)| k == streams[s].len())
            && received.len() == (n - 1) * packets_per_src * (payload_len + 1)
        {
            break;
        }
    }
    assert_eq!(
        received.len(),
        (n - 1) * packets_per_src * (payload_len + 1),
        "every word arrives"
    );
    assert_eq!(noc.be_overflows(), 0);
    assert_eq!(noc.gt_conflicts(), 0);
    // Per-source payload order preserved.
    let mut per_src: Vec<Vec<u32>> = vec![Vec::new(); n];
    for w in &received {
        if !w.is_header() {
            let src = (w.word() >> 16) as usize;
            per_src[src].push(w.word() & 0xFFFF);
        }
    }
    for (src, seq) in per_src.iter().enumerate() {
        if src == target {
            continue;
        }
        let expected: Vec<u32> = (0..(packets_per_src * payload_len) as u32).collect();
        assert_eq!(seq, &expected, "source {src} words in order");
    }
}

#[test]
fn random_be_pairs_on_mesh_never_violate_invariants() {
    let topo = Topology::mesh(3, 3, 1);
    let mut noc = Noc::new(&topo);
    let mut rng = Rng64::seed_from_u64(42);
    let n = topo.ni_count();
    // Precompute random single-packet sends with random timing.
    let mut pending: Vec<(usize, Vec<LinkWord>, usize)> = Vec::new(); // (src, words, idx)
    let mut expected_words = 0usize;
    for _ in 0..60 {
        let src = rng.below_usize(n);
        let mut dst = rng.below_usize(n);
        while dst == src {
            dst = rng.below_usize(n);
        }
        let len = rng.below_usize(6);
        let payload: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32).collect();
        let words = be_packet(topo.route(src, dst).expect("route"), 0, &payload);
        expected_words += words.len();
        pending.push((src, words, 0));
    }
    let mut delivered = 0usize;
    for _ in 0..100_000 {
        for (src, words, idx) in &mut pending {
            if *idx < words.len() {
                let link = noc.ni_link_mut(*src);
                if !link.is_busy() && link.be_credits() > 0 {
                    link.send(words[*idx]);
                    *idx += 1;
                }
                // Only one packet per source link per cycle round.
                break;
            }
        }
        noc.tick();
        for ni in 0..n {
            while noc.ni_link_mut(ni).recv().is_some() {
                delivered += 1;
            }
        }
        if delivered == expected_words {
            break;
        }
    }
    assert_eq!(delivered, expected_words);
    assert_eq!(noc.be_overflows(), 0);
    assert_eq!(noc.gt_conflicts(), 0);
}

#[test]
fn gt_circuit_sustains_full_rate_across_four_hops() {
    // A GT circuit over the 4-hop diagonal of a 3x3 mesh, all 8 slots: the
    // circuit must carry one flit per slot indefinitely with zero jitter.
    let topo = Topology::mesh(3, 3, 1);
    let mut noc = Noc::new(&topo);
    let path = topo.route(0, 8).expect("diagonal");
    let hops = path.hops() as u64;
    let h = PacketHeader {
        path,
        qid: 3,
        credits: 0,
        flush: false,
    };
    let frames = 64u64;
    let mut arrivals = Vec::new();
    for f in 0..frames {
        for c in 0..SLOT_WORDS {
            if c == 0 {
                noc.ni_link_mut(0)
                    .send(LinkWord::header(h.pack(), WordClass::Guaranteed));
            } else {
                noc.ni_link_mut(0)
                    .send(LinkWord::payload(f as u32, WordClass::Guaranteed, c == 2));
            }
            noc.tick();
            while let Some(w) = noc.ni_link_mut(8).recv() {
                if w.is_header() {
                    arrivals.push(noc.cycle() - 1);
                }
            }
        }
    }
    // Drain the pipeline cycle by cycle so arrival timestamps stay exact.
    for _ in 0..hops * SLOT_WORDS + 10 {
        noc.tick();
        while let Some(w) = noc.ni_link_mut(8).recv() {
            if w.is_header() {
                arrivals.push(noc.cycle() - 1);
            }
        }
    }
    assert_eq!(arrivals.len() as u64, frames, "one flit per slot sustained");
    for pair in arrivals.windows(2) {
        assert_eq!(
            pair[1] - pair[0],
            SLOT_WORDS,
            "zero jitter on a full circuit"
        );
    }
    assert_eq!(noc.gt_conflicts(), 0);
}

#[test]
fn link_stats_account_every_word() {
    let topo = Topology::mesh(2, 1, 1);
    let mut noc = Noc::new(&topo);
    let path = topo.route(0, 1).expect("route");
    let words = be_packet(path, 2, &[1, 2, 3]);
    for w in &words {
        noc.ni_link_mut(0).send(*w);
        noc.tick();
    }
    noc.run(20);
    let total: u64 = noc.stats().links.iter().map(|l| l.total_words()).sum();
    // Each word crosses 3 links: NI0→r0, r0→r1, r1→NI1... wait: route [E,
    // eject] means r0→r1 then r1→NI1, plus the injection link = 3 links.
    assert_eq!(total, 3 * words.len() as u64);
    let headers: u64 = noc.stats().links.iter().map(|l| l.headers[1]).sum();
    assert_eq!(headers, 3, "one header crossing per link");
    assert_eq!(noc.stats().delivered[1], words.len() as u64);
}

#[test]
fn ring_bidirectional_traffic() {
    let topo = Topology::ring(6);
    let mut noc = Noc::new(&topo);
    // Every NI sends one packet to its opposite.
    let mut streams: Vec<Vec<LinkWord>> = Vec::new();
    for src in 0..6usize {
        let dst = (src + 3) % 6;
        streams.push(be_packet(
            topo.route(src, dst).expect("route"),
            src as u8,
            &[src as u32],
        ));
    }
    let mut sent = [0usize; 6];
    let mut got = [0usize; 6];
    for _ in 0..2_000 {
        for src in 0..6 {
            if sent[src] < streams[src].len() {
                let link = noc.ni_link_mut(src);
                if !link.is_busy() && link.be_credits() > 0 {
                    link.send(streams[src][sent[src]]);
                    sent[src] += 1;
                }
            }
        }
        noc.tick();
        for (ni, g) in got.iter_mut().enumerate() {
            while noc.ni_link_mut(ni).recv().is_some() {
                *g += 1;
            }
        }
    }
    assert_eq!(got.iter().sum::<usize>(), 12, "6 packets × 2 words each");
    assert_eq!(noc.be_overflows(), 0);
}
