//! E6 — §5 hardware vs software protocol stack: the paper's closing
//! comparison. The hardware NI adds 4–10 pipelined cycles; a software
//! implementation costs ≈ 47 instructions *for packetization alone*
//! (Bhojwani & Mahapatra, cited as [4]).
//!
//! The hardware side is **measured** on the simulator (word pushed into a
//! source queue → packet header on the link); the software side uses the
//! calibrated instruction-budget model.

use aethereal_area::{SwStackModel, HW_NI_LATENCY_MAX, HW_NI_LATENCY_MIN};
use aethereal_bench::table::f1;
use aethereal_bench::{stream_system, StreamSetup, Table};
use aethereal_cfg::SlotStrategy;

/// Measures hardware packetization latency: push `payload` words, count
/// cycles until the packet's last word has left the NI (source queue empty
/// and packet on the wire).
fn hw_packetize_cycles(payload: usize) -> u64 {
    let (mut sys, _cfg) = stream_system(StreamSetup {
        gt_slots: Some(8),
        strategy: SlotStrategy::Consecutive,
        queue_words: 32,
        ..Default::default()
    });
    let t0 = sys.cycle();
    for i in 0..payload {
        sys.nis[1]
            .kernel
            .push_src(1, i as u32, t0)
            .expect("queue has room");
    }
    for _ in 0..500 {
        sys.tick();
        let sent = sys.nis[1].kernel.channel(1).stats().words_tx;
        if sent as usize >= payload {
            return sys.cycle() - t0;
        }
    }
    panic!("packet never left");
}

fn main() {
    let sw = SwStackModel::calibrated();
    println!(
        "paper §5: hardware NI overhead {HW_NI_LATENCY_MIN}-{HW_NI_LATENCY_MAX} cycles; \
         software packetization alone = 47 instructions [4]"
    );
    assert_eq!(sw.instructions(4), 47, "software model calibration");

    let mut t = Table::new(&[
        "payload words",
        "HW measured (cy)",
        "SW instructions",
        "SW cycles (CPI 1.3)",
        "SW/HW slowdown",
    ]);
    for &payload in &[1usize, 2, 4, 8, 16] {
        let hw = hw_packetize_cycles(payload);
        let instr = sw.instructions(payload as u64);
        let sw_cy = sw.cycles(payload as u64);
        t.row(&[
            payload.to_string(),
            hw.to_string(),
            instr.to_string(),
            sw_cy.to_string(),
            f1(sw_cy as f64 / hw as f64),
        ]);
        assert!(
            sw_cy > 2 * hw,
            "software must be several times slower (payload {payload}: {sw_cy} vs {hw})"
        );
    }
    t.print("E6 — hardware (measured) vs software (modeled) packetization");

    println!(
        "\nshape: the hardware stack stays within ~{HW_NI_LATENCY_MIN}–{} cycles \
         of per-word streaming cost while the software stack starts at 31 \
         instructions before the first word moves — the paper's argument for a \
         full hardware protocol stack.",
        HW_NI_LATENCY_MAX + 16
    );
}
