//! E13 — snapshot/restore cost.
//!
//! No counterpart in the paper: this experiment prices the *simulator's*
//! persistence layer, not the modeled hardware. Three questions per mesh
//! size (4x4 / 8x8 / 16x16 uniform stream meshes, warm — queues filled,
//! wormholes in flight):
//!
//! 1. **Capture** — one audited walk over every dynamic field into a JSON
//!    value tree (`NocSystem::snapshot`).
//! 2. **Text** — compact serialization of that tree (the checked-in
//!    golden / on-disk format).
//! 3. **Restore** — envelope validation plus the same walk in load
//!    direction onto a warm target (`NocSystem::restore`).
//!
//! The derived `snapshot_bytes_*` metrics record the state footprint of
//! the compact text per mesh size. A round-trip is re-verified before any
//! timing: restoring the captured snapshot into a fresh system must
//! reproduce it bit-for-bit.

use aethereal_bench::harness::Criterion;
use aethereal_bench::{criterion_group, criterion_main, stream_mesh, MeshTraffic};
use aethereal_cfg::json;

/// Cycles run before snapshotting, past the startup transient so the
/// walk serializes a representative busy state.
const WARMUP: u64 = 2_000;

fn bench_size(c: &mut Criterion, width: usize, height: usize) {
    let tag = format!("{width}x{height}");
    let (mut sys, _, _) = stream_mesh(width, height, MeshTraffic::Uniform);
    sys.run(WARMUP);
    let snap = sys.snapshot().expect("snapshot");
    // Round-trip spot-check before timing anything.
    let (mut fresh, _, _) = stream_mesh(width, height, MeshTraffic::Uniform);
    fresh.restore(&snap).expect("restore");
    assert_eq!(
        fresh.snapshot().expect("snapshot"),
        snap,
        "snapshot round-trip broke bit-identity"
    );
    let text = json::to_string_compact(&snap);
    c.bench_function(&format!("snapshot_{tag}_uniform_warm"), |b| {
        b.iter(|| sys.snapshot().expect("snapshot"))
    });
    c.bench_function(&format!("snapshot_text_{tag}"), |b| {
        b.iter(|| json::to_string_compact(&snap))
    });
    c.bench_function(&format!("restore_{tag}_uniform_warm"), |b| {
        b.iter(|| fresh.restore(&snap).expect("restore"))
    });
    c.derived(&format!("snapshot_bytes_{tag}"), text.len() as f64);
}

fn bench_snapshot(c: &mut Criterion) {
    for (w, h) in [(4, 4), (8, 8), (16, 16)] {
        bench_size(c, w, h);
    }
}

criterion_group!(e13, bench_snapshot);
criterion_main!(e13);
