//! E5 — §3/§4.3 network configuration: the cost of opening connections
//! through the NoC itself (Fig. 9), and the centralized-vs-distributed
//! trade-off the paper discusses.
//!
//! Reported:
//! * E5a — the exact Fig. 9 accounting: register writes (5 at the master
//!   NI, 3 at the slave NI per channel pair), configuration messages, and
//!   measured cycles, on the live simulator;
//! * E5b — configuration latency vs NoC size (the paper's claim that
//!   centralized configuration "is able to satisfy the needs of a small
//!   NoC (around 10 routers)");
//! * E5c — centralized vs distributed cost model: wall-clock parallelism vs
//!   conflict retries (§3).

use aethereal_bench::{master_slave_system, Table};
use aethereal_cfg::distributed::{DistRequest, DistributedModel};
use noc_sim::Topology;

fn main() {
    // ---- E5a: Fig. 9 accounting on the live system -------------------------
    let (_sys, cfg, _slave) = master_slave_system(2, 2);
    let s = *cfg.stats();
    let mut t = Table::new(&["quantity", "measured", "paper / expected"]);
    t.row(&[
        "config connections opened (steps 1-2)".into(),
        s.config_connections_opened.to_string(),
        "2 (to master NI and slave NI)".into(),
    ]);
    t.row(&[
        "register writes, user connection".into(),
        (s.reg_writes - 12).to_string(),
        "5 at master NI + 3 at slave NI = 8".into(),
    ]);
    t.row(&[
        "register writes, total".into(),
        s.reg_writes.to_string(),
        "2×(3 local + 3 remote) + 8 = 20".into(),
    ]);
    t.row(&[
        "writes that crossed the NoC".into(),
        s.remote_writes.to_string(),
        "total − 6 local".into(),
    ]);
    t.row(&[
        "config messages (incl. acks)".into(),
        s.config_messages.to_string(),
        "one per remote write + one per ack".into(),
    ]);
    t.row(&[
        "cycles waiting for acks".into(),
        s.cycles_waited.to_string(),
        "(opening connections takes time, §2)".into(),
    ]);
    t.print("E5a — Fig. 9 connection setup through the NoC (2×2 mesh)");
    assert_eq!(s.reg_writes, 20);
    assert_eq!(s.config_connections_opened, 2);

    // ---- E5b: configuration latency vs NoC size -----------------------------
    let mut t = Table::new(&["mesh", "routers", "reg writes", "messages", "cycles"]);
    for (w, h) in [(1usize, 2usize), (2, 2), (3, 2), (3, 3), (4, 4)] {
        let (_sys, cfg, _slave) = master_slave_system(w, h);
        let s = cfg.stats();
        t.row(&[
            format!("{w}x{h}"),
            (w * h).to_string(),
            s.reg_writes.to_string(),
            s.config_messages.to_string(),
            s.cycles_waited.to_string(),
        ]);
    }
    t.print("E5b — cost of opening one connection vs NoC size (centralized, live)");

    // ---- E5c: centralized vs distributed model (§3) -------------------------
    let topo = Topology::mesh(3, 3, 1);
    let model = DistributedModel::new(topo, 8);
    let mut t = Table::new(&[
        "requests",
        "scheme",
        "cycles",
        "messages",
        "conflicts",
        "failures",
    ]);
    for &n in &[4usize, 8, 16, 24] {
        let reqs: Vec<DistRequest> = (0..n)
            .map(|i| DistRequest {
                from: i % 9,
                to: (i * 5 + 4) % 9,
                slots: 1,
            })
            .filter(|r| r.from != r.to)
            .collect();
        let c = model.run_centralized(0, &reqs);
        t.row(&[
            reqs.len().to_string(),
            "centralized".into(),
            c.cycles.to_string(),
            c.messages.to_string(),
            c.conflicts.to_string(),
            c.failures.to_string(),
        ]);
        for ports in [1usize, 2, 4] {
            let d = model.run_distributed(ports, &reqs);
            t.row(&[
                reqs.len().to_string(),
                format!("distributed×{ports}"),
                d.cycles.to_string(),
                d.messages.to_string(),
                d.conflicts.to_string(),
                d.failures.to_string(),
            ]);
        }
    }
    t.print("E5c — centralized vs distributed configuration (3×3 mesh, cost model)");
    println!(
        "\nshape (§3): centralized is simple and conflict-free — adequate for small \
         NoCs; distributed parallelizes over ports but pays conflict retries, and \
         becomes attractive only as the NoC and request count grow."
    );
}
