//! E4 — §2 guaranteed services: throughput lower bounds, latency upper
//! bounds and jitter bounds of a GT connection hold **independently of
//! best-effort load** — the compositionality property the paper argues is
//! essential for SoC integration.
//!
//! A GT stream (2 of 8 slots) crosses the router-to-router link of a 2×1
//! mesh while a best-effort master loads the same link at increasing
//! intensity. Reported per load level: GT payload rate, GT inter-arrival
//! jitter (must stay ≤ the slot-table period bound), and the BE traffic's
//! own latency (which degrades — only BE pays for congestion).

use aethereal_bench::table::f3;
use aethereal_bench::Table;
use aethereal_cfg::runtime::{ChannelEnd, ConnectionRequest, Service};
use aethereal_cfg::{presets, NocSpec, NocSystem, RuntimeConfigurator, SlotStrategy, TopologySpec};
use aethereal_proto::{
    MemorySlave, StreamSink, StreamSource, TrafficGenerator, TrafficGeneratorConfig, TrafficMix,
};
use noc_sim::SLOT_WORDS;

const GT_SLOTS: usize = 2;
const STU: usize = 8;
const WARMUP: u64 = 1_000;
const WINDOW: u64 = 20_000;

struct Outcome {
    gt_rate: f64,
    gt_jitter: u64,
    be_mean_latency: Option<f64>,
    be_issued: u64,
}

fn run(be_gap: Option<u64>) -> Outcome {
    let spec = NocSpec::new(
        TopologySpec::Mesh {
            width: 2,
            height: 1,
            nis_per_router: 3,
        },
        vec![
            presets::cfg_module_ni(0, 8),
            presets::raw_ni(1, 1), // GT source, router 0
            presets::master_ni(2), // BE master, router 0
            presets::raw_ni(3, 1), // GT sink, router 1
            presets::slave_ni(4),  // BE memory, router 1
            presets::slave_ni(5),
        ],
    );
    let mut sys = NocSystem::from_spec(&spec);
    let mut cfg = RuntimeConfigurator::new(spec.topology.build(), 0, 0, STU);
    cfg.open_connection(
        &mut sys,
        &ConnectionRequest {
            fwd: Service::Guaranteed {
                slots: GT_SLOTS,
                strategy: SlotStrategy::Spread,
            },
            rev: Service::BestEffort,
            ..ConnectionRequest::best_effort(
                ChannelEnd { ni: 1, channel: 1 },
                ChannelEnd { ni: 3, channel: 1 },
            )
        },
    )
    .expect("GT connection opens");
    cfg.open_connection(
        &mut sys,
        &ConnectionRequest::best_effort(
            ChannelEnd { ni: 2, channel: 1 },
            ChannelEnd { ni: 4, channel: 1 },
        ),
    )
    .expect("BE connection opens");

    sys.bind_raw(1, 1, vec![1], Box::new(StreamSource::counting(u64::MAX)));
    let sink = sys.bind_raw(3, 1, vec![1], Box::new(StreamSink::new()));
    let be = be_gap.map(|gap| {
        sys.bind_slave(4, 1, Box::new(MemorySlave::new(1)));
        sys.bind_master(
            2,
            1,
            Box::new(TrafficGenerator::new(TrafficGeneratorConfig {
                seed: 7,
                mix: TrafficMix::Mixed { read_fraction: 0.5 },
                burst: (4, 8),
                gap_cycles: gap,
                max_outstanding: 4,
                ..Default::default()
            })),
        )
    });

    sys.run(WARMUP);
    let before = sys.raw_ip_as::<StreamSink>(sink).received().len();
    sys.run(WINDOW);
    let sink_ref = sys.raw_ip_as::<StreamSink>(sink);
    let after = sink_ref.received().len();
    let arrivals = &sink_ref.arrival_cycles()[before.max(1)..];
    let jitter = arrivals.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
    assert_eq!(sys.noc.gt_conflicts(), 0, "GT contention freedom violated");
    assert_eq!(sys.noc.be_overflows(), 0);
    let (be_lat, be_issued) = match be {
        Some(h) => {
            let g = sys.master_ip_as::<TrafficGenerator>(h);
            (g.latency().map(|l| l.mean), g.issued())
        }
        None => (None, 0),
    };
    Outcome {
        gt_rate: (after - before) as f64 / WINDOW as f64,
        gt_jitter: jitter,
        be_mean_latency: be_lat,
        be_issued,
    }
}

fn main() {
    // The §2 bounds for 2 spread slots in an 8-slot table: worst-case slot
    // wait = max gap × slot length; jitter ≤ max gap between reservations.
    let max_gap_slots = 4u64; // 2 slots evenly spread over 8
    let jitter_bound = max_gap_slots * SLOT_WORDS;
    println!(
        "GT reservation: {GT_SLOTS}/{STU} slots spread → analytic jitter bound \
         {jitter_bound} cycles (max slot gap {max_gap_slots} slots × {SLOT_WORDS} cycles)"
    );

    let mut t = Table::new(&[
        "BE load",
        "GT rate (w/cy)",
        "GT jitter (cy)",
        "BE issued",
        "BE mean lat (cy)",
    ]);
    let mut baseline = None;
    for (label, gap) in [
        ("none", None),
        ("light (gap 16)", Some(16)),
        ("medium (gap 4)", Some(4)),
        ("saturating (gap 0)", Some(0)),
    ] {
        let o = run(gap);
        t.row(&[
            label.into(),
            f3(o.gt_rate),
            o.gt_jitter.to_string(),
            o.be_issued.to_string(),
            o.be_mean_latency.map_or("-".into(), |l| format!("{l:.1}")),
        ]);
        let base = *baseline.get_or_insert(o.gt_rate);
        assert!(
            (o.gt_rate - base).abs() / base < 0.02,
            "GT throughput moved under BE load: {} vs {}",
            o.gt_rate,
            base
        );
        assert!(
            o.gt_jitter <= jitter_bound,
            "jitter {} exceeded the analytic bound {}",
            o.gt_jitter,
            jitter_bound
        );
    }
    t.print("E4 — GT guarantees vs best-effort background load");
    println!(
        "\nshape: GT rate and jitter are flat across all BE loads (guarantees hold); \
         only the BE traffic's own latency grows with congestion."
    );
}
