//! E10 — §4.1 arbitration ablation: the paper lists round-robin, weighted
//! round-robin and queue-filling-based arbitration as the configurable BE
//! schemes. Three saturating streams share one NI's router link under each
//! policy; the per-channel share shows the policy's character:
//!
//! * round-robin — equal shares;
//! * weighted round-robin (4:2:1) — proportional shares;
//! * queue-fill — always drains the fullest queue, maximizing packet
//!   length (lowest header overhead) while self-balancing under symmetric
//!   saturation.

use aethereal_bench::table::f3;
use aethereal_bench::Table;
use aethereal_cfg::runtime::{ChannelEnd, ConnectionRequest};
use aethereal_cfg::{presets, NocSpec, NocSystem, RuntimeConfigurator, TopologySpec};
use aethereal_ni::kernel::{ArbPolicy, PortSpec};
use aethereal_ni::ni::{NiSpec, PortStackSpec};
use aethereal_proto::StreamSource;

/// Source NI: CNIP + one raw port with three channels, with the given BE
/// arbitration policy.
fn source_ni(policy: ArbPolicy) -> NiSpec {
    let mut spec = presets::raw_ni(1, 3);
    spec.kernel.arb = policy;
    // Deeper source queues make the queue-fill policy's bias visible.
    spec.kernel.ports[1] = PortSpec {
        channels: 3,
        queue_words: 16,
        ..PortSpec::default()
    };
    assert!(matches!(spec.stacks[1], PortStackSpec::Raw));
    spec
}

fn run(policy: ArbPolicy) -> ([u64; 3], f64) {
    let spec = NocSpec::new(
        TopologySpec::Mesh {
            width: 2,
            height: 1,
            nis_per_router: 2,
        },
        vec![
            presets::cfg_module_ni(0, 8),
            source_ni(policy),
            presets::raw_ni(2, 3),
            presets::slave_ni(3),
        ],
    );
    let mut sys = NocSystem::from_spec(&spec);
    let mut cfg = RuntimeConfigurator::new(spec.topology.build(), 0, 0, 8);
    for ch in 1..=3usize {
        cfg.open_connection(
            &mut sys,
            &ConnectionRequest::best_effort(
                ChannelEnd { ni: 1, channel: ch },
                ChannelEnd { ni: 2, channel: ch },
            ),
        )
        .expect("leg opens");
    }
    for ch in 1..=3usize {
        sys.bind_raw(1, 1, vec![ch], Box::new(StreamSource::counting(u64::MAX)));
        // Sinks drain at line rate.
        sys.bind_raw(2, 1, vec![ch], Box::new(DrainSink));
    }
    sys.run(30_000);
    let mut out = [0u64; 3];
    let mut words = 0u64;
    let mut packets = 0u64;
    for ch in 1..=3usize {
        let st = *sys.nis[1].kernel.channel(ch).stats();
        out[ch - 1] = st.words_tx;
        words += st.words_tx;
        packets += st.packets_tx - st.credit_only_tx;
    }
    assert_eq!(sys.noc.be_overflows(), 0);
    (out, words as f64 / packets.max(1) as f64)
}

/// A sink that just pops (keeps credits flowing) without storing.
struct DrainSink;

impl<'a> aethereal_proto::ip::ClockedWith<aethereal_proto::ip::RawPort<'a>> for DrainSink {
    fn absorb(&mut self, port: &mut aethereal_proto::ip::RawPort<'a>, now: u64) {
        let _ = port.kernel.pop_dst(port.channels[0], now);
    }

    fn emit(&mut self, _port: &mut aethereal_proto::ip::RawPort<'a>, _now: u64) {}
}

impl aethereal_proto::RawIp for DrainSink {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn main() {
    let policies: [(&str, ArbPolicy); 3] = [
        ("round-robin", ArbPolicy::RoundRobin),
        (
            "weighted RR 4:2:1",
            ArbPolicy::WeightedRoundRobin(vec![1, 4, 2, 1]), // channel ids 1..3
        ),
        ("queue-fill", ArbPolicy::QueueFill),
    ];
    let mut t = Table::new(&[
        "policy",
        "ch1 words",
        "ch2 words",
        "ch3 words",
        "share ch1",
        "share ch2",
        "share ch3",
        "avg pkt payload",
    ]);
    let mut rr_payload = 0.0;
    for (name, policy) in policies {
        let (w, avg_payload) = run(policy.clone());
        let total: u64 = w.iter().sum();
        t.row(&[
            name.into(),
            w[0].to_string(),
            w[1].to_string(),
            w[2].to_string(),
            f3(w[0] as f64 / total as f64),
            f3(w[1] as f64 / total as f64),
            f3(w[2] as f64 / total as f64),
            f3(avg_payload),
        ]);
        match policy {
            ArbPolicy::RoundRobin => {
                rr_payload = avg_payload;
                for &wk in &w {
                    let share = wk as f64 / total as f64;
                    assert!((share - 1.0 / 3.0).abs() < 0.05, "RR share {share}");
                }
            }
            ArbPolicy::WeightedRoundRobin(_) => {
                // Weighting is per *grant*; rarely-served channels
                // accumulate more data and send longer packets, so the
                // word-level ratio compresses below the 4:1 grant ratio.
                assert!(
                    w[0] > w[1] && w[1] > w[2],
                    "WRR must order by weight: {w:?}"
                );
                let r = w[0] as f64 / w[2] as f64;
                assert!(
                    (1.5..=6.0).contains(&r),
                    "4:1 grant weighting, word ratio ≈ {r}"
                );
            }
            ArbPolicy::QueueFill => {
                // The fill-based policy's signature is packet length: it
                // always drains the fullest queue, so its packets are at
                // least as long as round-robin's.
                assert!(
                    avg_payload >= rr_payload - 1e-9,
                    "queue-fill packets ({avg_payload}) must not be shorter than RR ({rr_payload})"
                );
            }
        }
    }
    t.print("E10 — BE arbitration policies under three saturating channels (§4.1)");
    println!(
        "\nshape: RR equalizes; WRR orders throughput by weight (per-grant weighting, \
         word-ratios compressed by adaptive packet sizes); queue-fill trades \
         fairness for longer packets — why the paper leaves the scheme configurable."
    );
}
