//! E3 — §5 bandwidth: the NI delivers 16 Gbit/s per direction toward the
//! router (32 bit × 500 MHz), and a GT connection holding N of S slots is
//! guaranteed N/S of that ("reserving N slots for a connection results in a
//! total bandwidth of N·B_slot", §2).
//!
//! A saturating raw source streams over a GT connection with N = 1..8 of 8
//! slots, with slot placement both spread and consecutive; the delivered
//! payload rate is compared against the guarantee. Consecutive placement
//! amortizes the one-word packet header over longer packets, so its payload
//! efficiency approaches (3N−1)/3N while spread slots pay one header per
//! flit (2/3).

use aethereal_area::model::{LINK_BANDWIDTH_GBIT, ROUTER_CLOCK_MHZ};
use aethereal_bench::table::f3;
use aethereal_bench::{stream_system, StreamSetup, Table};
use aethereal_cfg::SlotStrategy;
use aethereal_proto::{StreamSink, StreamSource};

const WARMUP: u64 = 600;
const WINDOW: u64 = 12_000;

fn measure(slots: usize, strategy: SlotStrategy) -> (f64, f64) {
    // Deep queues so the end-to-end credit window does not throttle long
    // consecutive-run packets (the guarantee is a link property; buffer
    // sizing is a separate design-time choice).
    let (mut sys, _cfg) = stream_system(StreamSetup {
        gt_slots: Some(slots),
        strategy,
        queue_words: 64,
        ..Default::default()
    });
    let src = sys.bind_raw(1, 1, vec![1], Box::new(StreamSource::counting(u64::MAX)));
    let sink = sys.bind_raw(2, 1, vec![1], Box::new(StreamSink::new()));
    let _ = src;
    sys.run(WARMUP);
    let before = sys.raw_ip_as::<StreamSink>(sink).received().len();
    sys.run(WINDOW);
    let after = sys.raw_ip_as::<StreamSink>(sink).received().len();
    assert_eq!(sys.noc.gt_conflicts(), 0);
    let words_per_cycle = (after - before) as f64 / WINDOW as f64;
    let gbit = words_per_cycle * 32.0 * ROUTER_CLOCK_MHZ / 1_000.0;
    (words_per_cycle, gbit)
}

fn main() {
    println!(
        "link bandwidth: 32 bit × {ROUTER_CLOCK_MHZ} MHz = {LINK_BANDWIDTH_GBIT} Gbit/s \
         per direction (paper §5: 16 Gbit/s)"
    );

    let mut t = Table::new(&[
        "slots N/8",
        "guaranteed Gbit/s",
        "spread Gbit/s",
        "spread eff",
        "consec Gbit/s",
        "consec eff",
    ]);
    for slots in 1..=8usize {
        let guaranteed = slots as f64 / 8.0 * LINK_BANDWIDTH_GBIT;
        let (wpc_s, gbit_s) = measure(slots, SlotStrategy::Spread);
        let (wpc_c, gbit_c) = measure(slots, SlotStrategy::Consecutive);
        let slot_rate = slots as f64 / 8.0; // raw words/cycle incl. headers
        t.row(&[
            format!("{slots}/8"),
            f3(guaranteed),
            f3(gbit_s),
            f3(wpc_s / slot_rate),
            f3(gbit_c),
            f3(wpc_c / slot_rate),
        ]);
        // The guarantee is on raw slots; payload can never exceed it, and
        // must reach at least the per-flit header-discounted floor of 2/3.
        assert!(
            gbit_s <= guaranteed + 1e-6,
            "payload cannot exceed the reservation"
        );
        assert!(
            wpc_s / slot_rate >= 0.60,
            "slot utilization collapsed at N={slots} (spread)"
        );
        assert!(
            wpc_c >= wpc_s * 0.98,
            "consecutive placement must not lose to spread (N={slots})"
        );
    }
    t.print("E3 — GT bandwidth vs slot reservation (payload rate; eff = payload/slot words)");

    println!(
        "\nshape: delivered payload scales ~linearly with N; consecutive placement \
         approaches (3N-1)/3N efficiency, spread pays one header per flit (2/3)."
    );
}
