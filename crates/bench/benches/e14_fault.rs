//! E14 — fault-injection overhead and self-healing latency.
//!
//! No counterpart in the paper: this experiment prices the robustness
//! layer added on top of the model. Two questions:
//!
//! 1. **Armed-hook overhead.** Arming a fault plan moves the hot path
//!    from `fault: None` to a per-cycle window check. With an *empty*
//!    plan (or one whose windows are all in the future) that check must
//!    be a single comparison — the derived
//!    `fault_armed_empty_overhead` ratio (armed-idle over unarmed, 8x8
//!    uniform mesh) is the budgeted ≤ 1.02 from the PR 10 acceptance
//!    criteria. An actively dropping storm is also measured for context.
//! 2. **Heal latency.** `RuntimeConfigurator::heal` closes the
//!    connections crossing a failed link, masks it, re-plans and reopens
//!    — all over CNIP messages through the (degraded) NoC itself. The
//!    derived `heal_*` metrics report the cycles of configuration
//!    traffic and the wall-clock per heal for a BE and a GT connection
//!    crossing one masked mesh link.

use std::time::Instant;

use aethereal_bench::harness::Criterion;
use aethereal_bench::{criterion_group, criterion_main, stream_mesh, MeshTraffic};
use aethereal_cfg::runtime::{ChannelEnd, ConnectionRequest, Service};
use aethereal_cfg::{
    presets, ConnectionHandle, NocSpec, NocSystem, RuntimeConfigurator, SlotStrategy, TopologySpec,
};
use noc_sim::topology::dir;
use noc_sim::{FaultPlan, FaultReport, SuspectLink};

fn bench_armed_overhead(c: &mut Criterion) {
    c.bench_function("mesh8x8_uniform_unarmed_1k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::Uniform);
        b.iter(|| sys.run(1_000));
    });
    c.bench_function("mesh8x8_uniform_armed_empty_1k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::Uniform);
        sys.arm_faults(&FaultPlan::new(0xE14));
        b.iter(|| sys.run(1_000));
    });
    c.bench_function("mesh8x8_uniform_armed_storm_1k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::Uniform);
        let mut plan = FaultPlan::new(0xE14);
        // A permanently-open flaky window on a busy center link: the
        // per-word injection path stays hot for the whole run.
        plan.link_flaky(27, dir::EAST, 0, u64::MAX, 50_000);
        sys.arm_faults(&plan);
        b.iter(|| sys.run(1_000));
    });
    // Ratios are computed over the fastest sample, not the median: the
    // overhead under test is a couple of percent, well below the noise a
    // busy host injects into mid-distribution samples.
    let min_of = |c: &Criterion, name: &str| {
        c.results()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.measurement.min_ns)
    };
    if let (Some(unarmed), Some(armed)) = (
        min_of(c, "mesh8x8_uniform_unarmed_1k"),
        min_of(c, "mesh8x8_uniform_armed_empty_1k"),
    ) {
        c.derived("fault_armed_empty_overhead", armed / unarmed);
    }
    if let (Some(unarmed), Some(storm)) = (
        min_of(c, "mesh8x8_uniform_unarmed_1k"),
        min_of(c, "mesh8x8_uniform_armed_storm_1k"),
    ) {
        c.derived("fault_armed_storm_overhead", storm / unarmed);
    }
}

/// A 2x2 two-NIs-per-router mesh with one connection NI 1 → NI 6 whose
/// XY route crosses (router 0, EAST) — the link the heal masks.
fn heal_scenario(gt: bool) -> (NocSystem, RuntimeConfigurator, ConnectionHandle) {
    let spec = NocSpec::new(
        TopologySpec::Mesh {
            width: 2,
            height: 2,
            nis_per_router: 2,
        },
        vec![
            presets::cfg_module_ni(0, 16),
            presets::raw_ni(1, 1),
            presets::raw_ni(2, 1),
            presets::raw_ni(3, 1),
            presets::raw_ni(4, 1),
            presets::raw_ni(5, 1),
            presets::raw_ni(6, 1),
            presets::raw_ni(7, 1),
        ],
    );
    let mut sys = NocSystem::from_spec(&spec);
    let mut cfg = RuntimeConfigurator::new(spec.topology.build(), 0, 0, 8);
    let mut req = ConnectionRequest::best_effort(
        ChannelEnd { ni: 1, channel: 1 },
        ChannelEnd { ni: 6, channel: 1 },
    );
    if gt {
        req.fwd = Service::Guaranteed {
            slots: 2,
            strategy: SlotStrategy::Spread,
        };
    }
    let handle = cfg.open_connection(&mut sys, &req).expect("open");
    (sys, cfg, handle)
}

fn failed_link_report() -> FaultReport {
    FaultReport {
        suspects: vec![SuspectLink {
            event: 0,
            router: 0,
            port: dir::EAST,
            router_wide: false,
            dropped_words: 12,
            corrupted_words: 0,
            lost_credits: 0,
            active: false,
        }],
        ..FaultReport::default()
    }
}

fn bench_heal(c: &mut Criterion) {
    for (tag, gt) in [("be", false), ("gt", true)] {
        let mut cycles = Vec::new();
        let mut micros = Vec::new();
        for _ in 0..9 {
            let (mut sys, mut cfg, handle) = heal_scenario(gt);
            let report = failed_link_report();
            let before = sys.cycle();
            let start = Instant::now();
            let outcome = cfg.heal(&mut sys, &report, vec![handle]).expect("heal");
            micros.push(start.elapsed().as_secs_f64() * 1e6);
            cycles.push((sys.cycle() - before) as f64);
            assert_eq!(outcome.reopened, 1, "heal must reopen the connection");
            assert!(outcome.failed.is_empty());
        }
        cycles.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        micros.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        c.derived(
            &format!("heal_{tag}_latency_cycles"),
            cycles[cycles.len() / 2],
        );
        c.derived(&format!("heal_{tag}_latency_us"), micros[micros.len() / 2]);
    }
}

criterion_group!(e14, bench_armed_overhead, bench_heal);
criterion_main!(e14);
