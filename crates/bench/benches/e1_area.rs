//! E1 — §5 area breakdown: regenerates the synthesized-area table of the
//! paper's evaluation from the calibrated analytical model, then sweeps the
//! design parameters the paper lists as instantiation-time choices.
//!
//! Paper values (0.13 µm): NI kernel 0.110 mm²; narrowcast 0.004 (4 % of
//! kernel); multi-connection 0.007 (6 %); DTL master 0.005 (5 %); DTL slave
//! 0.002 (2 %); config shell 0.010; example 4-port NI total **0.143 mm²**
//! at 500 MHz / 16 Gbit/s per direction.

use aethereal_area::model::{ShellKind, LINK_BANDWIDTH_GBIT};
use aethereal_area::{AreaModel, NiInstance};
use aethereal_bench::table::f1;
use aethereal_bench::Table;

fn main() {
    let model = AreaModel::new();
    let reference = NiInstance::reference();
    let b = model.estimate(&reference);

    let mut t = Table::new(&["component", "paper mm²", "model mm²", "% of kernel"]);
    let kernel = b.kernel_um2();
    t.row(&[
        "NI kernel".into(),
        "0.110".into(),
        format!("{:.3}", b.kernel_mm2()),
        "100".into(),
    ]);
    let paper = |s: ShellKind| match s {
        ShellKind::Narrowcast => "0.004",
        ShellKind::MultiConnection => "0.007",
        ShellKind::DtlMaster => "0.005",
        ShellKind::DtlSlave => "0.002",
        ShellKind::Config => "0.010",
    };
    let mut seen = std::collections::HashSet::new();
    for (kind, area) in &b.shells {
        if !seen.insert(*kind) {
            continue;
        }
        t.row(&[
            kind.name().into(),
            paper(*kind).into(),
            format!("{:.3}", area / 1e6),
            format!("{:.0}", area / kernel * 100.0),
        ]);
    }
    t.row(&[
        "example 4-port NI (total)".into(),
        "0.143".into(),
        format!("{:.3}", b.total_mm2()),
        String::new(),
    ]);
    t.print("E1a — §5 synthesized-area table (paper vs calibrated model)");

    assert!(
        (b.kernel_mm2() - 0.110).abs() < 1e-9,
        "kernel anchor must be exact"
    );
    assert!(
        (b.total_mm2() - 0.143).abs() < 1e-9,
        "total anchor must be exact"
    );

    // Itemized kernel decomposition behind the calibration.
    let mut t = Table::new(&["kernel item", "µm²", "share %"]);
    for (name, a) in [
        ("hardware FIFOs (4096 bits)", b.fifos),
        ("per-channel control (8 ch)", b.channel_ctrl),
        ("slot table unit (8 slots)", b.stu),
        ("port logic (4 ports)", b.ports),
        ("packetizer/depacketizer/scheduler", b.shared),
    ] {
        t.row(&[name.into(), format!("{a:.0}"), f1(a / kernel * 100.0)]);
    }
    t.print("E1b — kernel area decomposition (calibration)");

    // Design-space sweep: queue depth and channel count (the §4.1
    // instantiation-time knobs).
    let mut t = Table::new(&[
        "channels",
        "queue words",
        "kernel mm²",
        "total mm²",
        "f (MHz)",
    ]);
    for &channels in &[4usize, 8, 16, 32] {
        for &queue_words in &[4usize, 8, 16] {
            let ni = NiInstance {
                channels,
                queue_words,
                ..reference.clone()
            };
            let e = model.estimate(&ni);
            t.row(&[
                channels.to_string(),
                queue_words.to_string(),
                format!("{:.3}", e.kernel_mm2()),
                format!("{:.3}", e.total_mm2()),
                format!("{:.0}", model.frequency_mhz(&ni)),
            ]);
        }
    }
    t.print("E1c — design-space sweep (queues dominate, as §5 argues)");

    println!(
        "\nlink bandwidth at 500 MHz: {LINK_BANDWIDTH_GBIT} Gbit/s per direction (paper: 16 Gbit/s)"
    );
}
