//! E9 — §2/§4.2 connection types: narrowcast (one shared address space
//! split over multiple memories, responses merged in order) and multicast
//! (every slave executes every transaction), at the shell costs reported in
//! §5 (narrowcast 0.004 mm² = 4 % of the kernel, multi-connection
//! 0.007 mm² = 6 %).

use aethereal_area::model::ShellKind;
use aethereal_bench::Table;
use aethereal_cfg::runtime::{ChannelEnd, ConnectionRequest};
use aethereal_cfg::{presets, NocSpec, NocSystem, RuntimeConfigurator, TopologySpec};
use aethereal_ni::shell::AddrRange;
use aethereal_ni::Transaction;
use aethereal_proto::MemorySlave;

fn poll(sys: &mut NocSystem, ni: usize, port: usize) -> aethereal_ni::TransactionResponse {
    for _ in 0..20_000 {
        sys.tick();
        if let Some(r) = sys.nis[ni].master_mut(port).take_response() {
            return r;
        }
    }
    panic!("no response");
}

fn narrowcast_experiment() {
    // One master with a 2-range narrowcast over two memories.
    let ranges = vec![
        AddrRange {
            base: 0x0000,
            size: 0x100,
        },
        AddrRange {
            base: 0x0100,
            size: 0x100,
        },
    ];
    let spec = NocSpec::new(
        TopologySpec::Mesh {
            width: 2,
            height: 1,
            nis_per_router: 2,
        },
        vec![
            presets::cfg_module_ni(0, 4),
            presets::narrowcast_master_ni(1, ranges),
            presets::slave_ni(2),
            presets::slave_ni(3),
        ],
    );
    let mut sys = NocSystem::from_spec(&spec);
    let mut cfg = RuntimeConfigurator::new(spec.topology.build(), 0, 0, 8);
    // One point-to-point connection per master-slave pair (§4.2: "we
    // implement the narrowcast connection as a collection of point-to-point
    // connections").
    for (ch, slave) in [(1usize, 2usize), (2, 3)] {
        cfg.open_connection(
            &mut sys,
            &ConnectionRequest::best_effort(
                ChannelEnd { ni: 1, channel: ch },
                ChannelEnd {
                    ni: slave,
                    channel: 1,
                },
            ),
        )
        .expect("narrowcast leg opens");
    }
    let m2 = sys.bind_slave(2, 1, Box::new(MemorySlave::new(1)));
    let m3 = sys.bind_slave(3, 1, Box::new(MemorySlave::new(5))); // slower memory

    // Writes into both halves of the shared address space.
    sys.nis[1]
        .master_mut(1)
        .submit(Transaction::acked_write(0x0010, vec![111], 1));
    assert_eq!(poll(&mut sys, 1, 1).status, aethereal_ni::RespStatus::Ok);
    sys.nis[1]
        .master_mut(1)
        .submit(Transaction::acked_write(0x0110, vec![222], 2));
    assert_eq!(poll(&mut sys, 1, 1).status, aethereal_ni::RespStatus::Ok);

    // Interleaved reads to both slaves: responses must return in order even
    // though slave 3 is five times slower.
    sys.nis[1]
        .master_mut(1)
        .submit(Transaction::read(0x0110, 1, 3)); // slow slave first
    sys.nis[1]
        .master_mut(1)
        .submit(Transaction::read(0x0010, 1, 4)); // fast slave second
    let r1 = poll(&mut sys, 1, 1);
    let r2 = poll(&mut sys, 1, 1);
    assert_eq!(
        (r1.trans_id, r1.data[0]),
        (3, 222),
        "slow slave answers first in order"
    );
    assert_eq!((r2.trans_id, r2.data[0]), (4, 111));

    let mut t = Table::new(&["quantity", "value"]);
    t.row(&[
        "address ranges".into(),
        "0x000-0x0FF → mem A, 0x100-0x1FF → mem B".into(),
    ]);
    t.row(&[
        "requests executed by mem A / mem B".into(),
        format!(
            "{} / {}",
            sys.slave_ip_as::<MemorySlave>(m2).reads()
                + sys.slave_ip_as::<MemorySlave>(m2).writes(),
            sys.slave_ip_as::<MemorySlave>(m3).reads()
                + sys.slave_ip_as::<MemorySlave>(m3).writes()
        ),
    ]);
    t.row(&[
        "in-order response merge across unequal slave speeds".into(),
        "verified".into(),
    ]);
    t.row(&[
        "narrowcast shell cost (§5)".into(),
        format!("{} µm² (4% of kernel)", ShellKind::Narrowcast.area_um2()),
    ]);
    t.print("E9a — narrowcast: one shared address space over two memories");
}

fn multicast_experiment() {
    let spec = NocSpec::new(
        TopologySpec::Mesh {
            width: 2,
            height: 1,
            nis_per_router: 2,
        },
        vec![
            presets::cfg_module_ni(0, 4),
            presets::multicast_master_ni(1, 2),
            presets::slave_ni(2),
            presets::slave_ni(3),
        ],
    );
    let mut sys = NocSystem::from_spec(&spec);
    let mut cfg = RuntimeConfigurator::new(spec.topology.build(), 0, 0, 8);
    for (ch, slave) in [(1usize, 2usize), (2, 3)] {
        cfg.open_connection(
            &mut sys,
            &ConnectionRequest::best_effort(
                ChannelEnd { ni: 1, channel: ch },
                ChannelEnd {
                    ni: slave,
                    channel: 1,
                },
            ),
        )
        .expect("multicast leg opens");
    }
    let m2 = sys.bind_slave(2, 1, Box::new(MemorySlave::new(1)));
    let m3 = sys.bind_slave(3, 1, Box::new(MemorySlave::new(2)));

    // One acked write: both slaves execute it; the shell merges both acks
    // into a single response.
    sys.nis[1]
        .master_mut(1)
        .submit(Transaction::acked_write(0x40, vec![0xAA, 0xBB], 7));
    let ack = poll(&mut sys, 1, 1);
    assert_eq!(ack.trans_id, 7);
    assert_eq!(ack.status, aethereal_ni::RespStatus::Ok);
    sys.run(500);

    let w2 = sys.slave_ip_as::<MemorySlave>(m2).writes();
    let w3 = sys.slave_ip_as::<MemorySlave>(m3).writes();
    let v2 = sys.slave_ip_as::<MemorySlave>(m2).peek(0x40);
    let v3 = sys.slave_ip_as::<MemorySlave>(m3).peek(0x40);
    let mut t = Table::new(&["quantity", "value"]);
    t.row(&[
        "slaves executing each transaction".into(),
        "2 of 2 (§2 multicast)".into(),
    ]);
    t.row(&[
        "writes executed (mem A / mem B)".into(),
        format!("{w2} / {w3}"),
    ]);
    t.row(&[
        "value at 0x40 (mem A / mem B)".into(),
        format!("{v2:#x} / {v3:#x}"),
    ]);
    t.row(&["acks merged into one response".into(), "verified".into()]);
    t.print("E9b — multicast: one write executed by every slave");
    assert_eq!((w2, w3), (1, 1));
    assert_eq!((v2, v3), (0xAA, 0xAA));
}

fn main() {
    narrowcast_experiment();
    multicast_experiment();
    println!(
        "\nshape (§4.2/§5): both connection types work as plug-in shells around an \
         unchanged kernel, at 4% / 6% of the kernel area."
    );
}
