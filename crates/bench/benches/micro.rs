//! Criterion micro-benchmarks of the simulator's hot paths: FIFO
//! operations, header packing, routing, router datapath, slot allocation
//! and whole-system ticks. These quantify the *simulator's* performance
//! (not the paper's hardware) and guard against regressions.

use aethereal_bench::harness::{black_box, Criterion};
use aethereal_bench::{criterion_group, criterion_main};
use aethereal_bench::{master_slave_system, sharded_stream_mesh, stream_mesh, stream_system};
use aethereal_bench::{MeshTraffic, StreamSetup};
use aethereal_cfg::{SlotAllocator, SlotStrategy};
use aethereal_ni::fifo::HwFifo;
use aethereal_proto::StreamSource;
use noc_sim::{LinkWord, Noc, PacketHeader, Path, Topology, WordClass};

fn bench_fifo(c: &mut Criterion) {
    c.bench_function("fifo_push_pop", |b| {
        let mut f = HwFifo::new(64, 2);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            if f.push(black_box(now as u32), now).is_err() {
                while f.pop(now + 2).is_some() {}
            }
            black_box(f.sync_level(now));
        });
    });
}

fn bench_header(c: &mut Criterion) {
    let h = PacketHeader {
        path: Path::new(&[1, 2, 3, 4]).expect("valid"),
        qid: 7,
        credits: 13,
        flush: true,
    };
    c.bench_function("header_pack_unpack", |b| {
        b.iter(|| {
            let w = black_box(&h).pack();
            black_box(PacketHeader::unpack(w));
        });
    });
    c.bench_function("path_shift", |b| {
        let w = h.pack();
        b.iter(|| black_box(Path::shift_header(black_box(w))));
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::mesh(4, 4, 1);
    c.bench_function("xy_route_4x4", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 16;
            black_box(topo.route(black_box(i), black_box(15 - i)).expect("route"));
        });
    });
}

fn bench_router_datapath(c: &mut Criterion) {
    c.bench_function("noc_tick_idle_4x4", |b| {
        let topo = Topology::mesh(4, 4, 1);
        let mut noc = Noc::new(&topo);
        b.iter(|| noc.tick());
    });
    // The steady-state loaded tick: ring-buffer transport end to end, zero
    // allocations and zero `LinkWord` clones (words are `Copy` and move by
    // value through fixed rings — pinned by the facade `zero_alloc` test).
    c.bench_function("noc_tick_loaded_2x2", |b| {
        let topo = Topology::mesh(2, 2, 1);
        let mut noc = Noc::new(&topo);
        let path = topo.route(0, 3).expect("route");
        let header = PacketHeader {
            path,
            qid: 0,
            credits: 0,
            flush: false,
        };
        b.iter(|| {
            let link = noc.ni_link_mut(0);
            if !link.is_busy() && link.be_credits() > 0 {
                link.send(LinkWord::header_only(header.pack(), WordClass::BestEffort));
            }
            noc.tick();
            while noc.ni_link_mut(3).recv().is_some() {}
        });
    });
}

fn bench_engine_fast_path(c: &mut Criterion) {
    // One `run(1000)` over an idle network: the engine detects quiescence
    // and batches all 1000 cycles into one slot-aware skip. Compare against
    // 1000 x `noc_tick_idle_4x4` to see the batching win.
    c.bench_function("engine_run_quiescent_1k_4x4", |b| {
        let topo = Topology::mesh(4, 4, 1);
        let mut noc = Noc::new(&topo);
        b.iter(|| noc.run(1_000));
    });
}

fn bench_slot_allocator(c: &mut Criterion) {
    let topo = Topology::mesh(4, 4, 1);
    let path = topo.route(0, 15).expect("route");
    c.bench_function("slot_allocate_free", |b| {
        let mut alloc = SlotAllocator::new(16);
        b.iter(|| {
            let a = alloc
                .allocate(&topo, 0, &path, 4, SlotStrategy::Spread)
                .expect("slots available");
            alloc.free(black_box(&a));
        });
    });
}

fn bench_full_system(c: &mut Criterion) {
    c.bench_function("system_tick_streaming", |b| {
        let (mut sys, _cfg) = stream_system(StreamSetup {
            gt_slots: Some(4),
            ..Default::default()
        });
        sys.bind_raw(1, 1, vec![1], Box::new(StreamSource::counting(u64::MAX)));
        b.iter(|| sys.tick());
    });
    c.bench_function("system_build_and_configure_2x2", |b| {
        b.iter(|| {
            let (sys, cfg, _slave) = master_slave_system(2, 2);
            black_box((sys.cycle(), cfg.stats().reg_writes));
        });
    });
}

fn bench_sharding(c: &mut Criterion) {
    // Busy 8x8 mesh, 64 endless column streams all crossing the row cut:
    // the sequential reference, the 2-shard runner on one thread at batch
    // sizes 1 and 16 (pure sharding overhead vs the slack-batched epoch),
    // and the 2-shard worker-thread runner (scaling — bounded by the
    // host's core count).
    c.bench_function("mesh8x8_uniform_seq_1k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::Uniform);
        b.iter(|| sys.run(1_000));
    });
    c.bench_with_params(
        "mesh8x8_uniform_shard2_1k",
        &[("shards", 2), ("batch", 1)],
        |b| {
            let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::Uniform, 2);
            b.iter(|| sharded.run(1_000));
        },
    );
    c.bench_with_params(
        "mesh8x8_uniform_shard2_b16_1k",
        &[("shards", 2), ("batch", 16)],
        |b| {
            let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::Uniform, 2);
            sharded.set_batch(16);
            b.iter(|| sharded.run(1_000));
        },
    );
    c.bench_with_params(
        "mesh8x8_uniform_shard2_par_1k",
        &[("shards", 2), ("batch", 1)],
        |b| {
            let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::Uniform, 2);
            b.iter(|| sharded.run_parallel(1_000));
        },
    );
    c.bench_with_params(
        "mesh8x8_uniform_shard2_par_b16_1k",
        &[("shards", 2), ("batch", 16)],
        |b| {
            let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::Uniform, 2);
            sharded.set_batch(16);
            b.iter(|| sharded.run_parallel(1_000));
        },
    );
    // Hotspot traffic (many senders into a center block, heavy contention
    // and boundary credits under pressure): the ISSUE-5 acceptance case —
    // the slack-batched epoch must turn the sequential-sharded overhead
    // into a win at B=16.
    c.bench_function("mesh8x8_hotspot_seq_1k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::Hotspot);
        b.iter(|| sys.run(1_000));
    });
    for batch in [1u64, 16] {
        c.bench_with_params(
            &format!("mesh8x8_hotspot_shard2_b{batch}_1k"),
            &[("shards", 2), ("batch", batch)],
            |b| {
                let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::Hotspot, 2);
                sharded.set_batch(batch);
                b.iter(|| sharded.run(1_000));
            },
        );
    }
    // Finer bands let the activity set bite: the hotspot leaves the top
    // and bottom rows untouched, so at 8 shards two regions sleep through
    // the whole run — work the monolithic tick cannot avoid — while the
    // batched epoch keeps the 8-region scheduling overhead amortized.
    c.bench_with_params(
        "mesh8x8_hotspot_shard8_b16_1k",
        &[("shards", 8), ("batch", 16)],
        |b| {
            let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::Hotspot, 8);
            sharded.set_batch(16);
            b.iter(|| sharded.run(1_000));
        },
    );
    // The activity-set scheduler: a fully idle 8x8 (the global fast path),
    // the same mesh with traffic confined to the top band while three
    // regions sleep, and — as the busy band's stand-alone cost reference —
    // an 8x2 mesh carrying exactly that band's streams.
    c.bench_function("mesh8x8_idle_shard4_1k", |b| {
        let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::Idle, 4);
        b.iter(|| sharded.run(1_000));
    });
    c.bench_function("mesh8x8_busyband_shard4_1k", |b| {
        let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::BusyBand, 4);
        b.iter(|| sharded.run(1_000));
    });
    c.bench_function("mesh8x8_busyband_seq_1k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::BusyBand);
        b.iter(|| sys.run(1_000));
    });
    c.bench_function("mesh8x2_band_alone_seq_1k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 2, MeshTraffic::BusyBand);
        b.iter(|| sys.run(1_000));
    });
}

/// 16x16 sweeps (256 routers; routing unconstrained since the two-level
/// planner): shard count and batch size over uniform and cross-region
/// hotspot traffic.
fn bench_mesh16(c: &mut Criterion) {
    c.bench_function("mesh16x16_uniform_seq_1k", |b| {
        let (mut sys, _, _) = stream_mesh(16, 16, MeshTraffic::Uniform);
        b.iter(|| sys.run(1_000));
    });
    c.bench_function("mesh16x16_hotspot_seq_1k", |b| {
        let (mut sys, _, _) = stream_mesh(16, 16, MeshTraffic::Hotspot);
        b.iter(|| sys.run(1_000));
    });
    for (traffic, tag) in [
        (MeshTraffic::Uniform, "uniform"),
        (MeshTraffic::Hotspot, "hotspot"),
    ] {
        for batch in [1u64, 4, 16] {
            c.bench_with_params(
                &format!("mesh16x16_{tag}_shard4_b{batch}_1k"),
                &[("shards", 4), ("batch", batch)],
                |b| {
                    let (mut sharded, _) = sharded_stream_mesh(16, 16, traffic, 4);
                    sharded.set_batch(batch);
                    b.iter(|| sharded.run(1_000));
                },
            );
        }
        c.bench_with_params(
            &format!("mesh16x16_{tag}_shard2_b16_1k"),
            &[("shards", 2), ("batch", 16)],
            |b| {
                let (mut sharded, _) = sharded_stream_mesh(16, 16, traffic, 2);
                sharded.set_batch(16);
                b.iter(|| sharded.run(1_000));
            },
        );
    }
}

/// Derived scaling metrics over the sharding benches (recorded into the
/// `BENCH_JSON` history, e.g. `BENCH_pr3.json`).
fn derive_scaling(c: &mut Criterion) {
    let ratio = |c: &Criterion, a: &str, b: &str| -> Option<f64> {
        Some(c.median_of(a)? / c.median_of(b)?)
    };
    if let Some(r) = ratio(c, "mesh8x8_uniform_seq_1k", "mesh8x8_uniform_shard2_1k") {
        c.derived("scaling_8x8_shard2_seq_speedup", r);
    }
    if let Some(r) = ratio(c, "mesh8x8_uniform_seq_1k", "mesh8x8_uniform_shard2_par_1k") {
        c.derived("scaling_8x8_shard2_parallel_speedup", r);
    }
    if let Some(r) = ratio(c, "mesh8x8_busyband_seq_1k", "mesh8x8_busyband_shard4_1k") {
        c.derived("idle_region_skip_speedup_8x8_busyband", r);
    }
    if let Some(r) = ratio(c, "mesh8x8_busyband_shard4_1k", "mesh8x2_band_alone_seq_1k") {
        // How close the mixed idle/busy run gets to paying only for its
        // busy band (1.0 = the three idle regions are free).
        c.derived("mixed_vs_busy_band_alone_ratio", r);
    }
    // Slack-batched epochs: sequential-sharded speedup vs the monolithic
    // run at B=1 and B=16 (the ISSUE-5 acceptance asks ≥ 1.0 on the 8x8
    // hotspot at B=16), and the pure speedup-vs-B ratios on the 16x16
    // sweeps.
    for (name, seq, shard) in [
        (
            "hotspot_8x8_shard2_seq_speedup_b1",
            "mesh8x8_hotspot_seq_1k",
            "mesh8x8_hotspot_shard2_b1_1k",
        ),
        (
            "hotspot_8x8_shard2_seq_speedup_b16",
            "mesh8x8_hotspot_seq_1k",
            "mesh8x8_hotspot_shard2_b16_1k",
        ),
        (
            "hotspot_8x8_shard8_seq_speedup_b16",
            "mesh8x8_hotspot_seq_1k",
            "mesh8x8_hotspot_shard8_b16_1k",
        ),
        (
            "uniform_8x8_shard2_seq_speedup_b16",
            "mesh8x8_uniform_seq_1k",
            "mesh8x8_uniform_shard2_b16_1k",
        ),
        (
            "uniform_16x16_shard4_seq_speedup_b16",
            "mesh16x16_uniform_seq_1k",
            "mesh16x16_uniform_shard4_b16_1k",
        ),
        (
            "hotspot_16x16_shard4_seq_speedup_b16",
            "mesh16x16_hotspot_seq_1k",
            "mesh16x16_hotspot_shard4_b16_1k",
        ),
    ] {
        if let Some(r) = ratio(c, seq, shard) {
            c.derived(name, r);
        }
    }
    for (name, b1, b16) in [
        (
            "speedup_vs_b_8x8_hotspot_shard2",
            "mesh8x8_hotspot_shard2_b1_1k",
            "mesh8x8_hotspot_shard2_b16_1k",
        ),
        (
            "speedup_vs_b_16x16_uniform_shard4",
            "mesh16x16_uniform_shard4_b1_1k",
            "mesh16x16_uniform_shard4_b16_1k",
        ),
        (
            "speedup_vs_b_16x16_hotspot_shard4",
            "mesh16x16_hotspot_shard4_b1_1k",
            "mesh16x16_hotspot_shard4_b16_1k",
        ),
    ] {
        if let Some(r) = ratio(c, b1, b16) {
            c.derived(name, r);
        }
    }
}

criterion_group!(
    benches,
    bench_fifo,
    bench_header,
    bench_routing,
    bench_router_datapath,
    bench_engine_fast_path,
    bench_slot_allocator,
    bench_full_system,
    bench_sharding,
    bench_mesh16,
    derive_scaling
);
criterion_main!(benches);
