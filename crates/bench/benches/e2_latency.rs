//! E2 — §5 latency breakdown: measures the latency overhead the NI adds to
//! a transaction, reproducing the paper's numbers:
//!
//! * master shell sequentialization: 2 cycles;
//! * narrowcast/multicast shell: 0–2 cycles;
//! * NI kernel: 1–3 cycles (3-word flit alignment);
//! * clock-domain crossing: 2 cycles;
//! * → total **4–10 cycles per NI**, pipelined.
//!
//! The bench injects single words/transactions at every slot-boundary
//! offset and subtracts the pure network time (one slot per hop for GT) to
//! isolate the NI overhead.

use aethereal_bench::{stream_system, StreamSetup, Table};
use aethereal_cfg::SlotStrategy;
use aethereal_ni::Transaction;
use noc_sim::SLOT_WORDS;

/// Kernel-only path (raw port, GT with all slots owned): word pushed into
/// the source queue → word visible at the remote destination queue.
fn kernel_path_latency(offset: u64) -> u64 {
    let (mut sys, _cfg) = stream_system(StreamSetup {
        gt_slots: Some(8),
        strategy: SlotStrategy::Consecutive,
        ..Default::default()
    });
    // Desynchronize to the requested slot offset.
    while sys.cycle() % SLOT_WORDS != offset % SLOT_WORDS {
        sys.tick();
    }
    let t0 = sys.cycle();
    sys.nis[1]
        .kernel
        .push_src(1, 0xAB, t0)
        .expect("queue empty");
    for _ in 0..200 {
        sys.tick();
        let now = sys.cycle();
        if sys.nis[2].kernel.peek_dst(1, now).is_some() {
            return now - t0;
        }
    }
    panic!("word never arrived");
}

/// Full shell path: master submits a posted write → slave IP sees the
/// transaction (includes master shell seq, kernel, crossing on both sides,
/// slave shell deseq).
fn shell_path_latency(offset: u64) -> u64 {
    let (mut sys, _cfg, slave) = aethereal_bench::master_slave_system(2, 1);
    while sys.cycle() % SLOT_WORDS != offset % SLOT_WORDS {
        sys.tick();
    }
    let t0 = sys.cycle();
    sys.nis[1]
        .master_mut(1)
        .submit(Transaction::write(0x10, vec![7], 1));
    for _ in 0..2_000 {
        sys.tick();
        // Measure until the slave *shell* delivers the transaction — the
        // full master-NI + slave-NI traversal.
        if sys.nis[slave].slave_mut(1).take_request().is_some() {
            return sys.cycle() - t0;
        }
    }
    panic!("request never arrived");
}

fn main() {
    // The 2×1-mesh route crosses 2 routers: 2 slots = 6 cycles of pure
    // network time for GT.
    let hops = 2u64;
    let network = hops * SLOT_WORDS;

    let mut t = Table::new(&["inject offset", "end-to-end (cy)", "NI-pair overhead (cy)"]);
    let mut kernel_overheads = Vec::new();
    for offset in 0..SLOT_WORDS {
        let lat = kernel_path_latency(offset);
        let overhead = lat - network;
        kernel_overheads.push(overhead);
        t.row(&[offset.to_string(), lat.to_string(), overhead.to_string()]);
    }
    t.print("E2a — kernel-only path (raw GT channel, source queue → destination queue)");
    let kmin = *kernel_overheads.iter().min().expect("non-empty");
    let kmax = *kernel_overheads.iter().max().expect("non-empty");
    println!(
        "kernel + 2×crossing overhead: {kmin}–{kmax} cycles per NI pair \
         (paper per NI: kernel 1–3 + crossing 2 = 3–5)"
    );

    // BE words cross each router with one cycle of arbitration latency.
    let be_network = hops;
    let mut t = Table::new(&["inject offset", "end-to-end (cy)", "NI-pair overhead (cy)"]);
    let mut shell_overheads = Vec::new();
    for offset in 0..SLOT_WORDS {
        let lat = shell_path_latency(offset);
        let overhead = lat.saturating_sub(be_network);
        shell_overheads.push(overhead);
        t.row(&[offset.to_string(), lat.to_string(), overhead.to_string()]);
    }
    t.print("E2b — full shell path (master submit → request message at slave NI, BE)");
    let smin = *shell_overheads.iter().min().expect("non-empty");
    let smax = *shell_overheads.iter().max().expect("non-empty");
    println!(
        "shells + kernels overhead: {smin}–{smax} cycles for the NI pair \
         (paper per NI: 4–10 cycles → 8–20 for a pair)"
    );

    let mut t = Table::new(&["stage (paper §5)", "cycles"]);
    for (s, c) in [
        ("DTL master shell (sequentialization)", "2"),
        ("narrowcast / multicast shell", "0–2"),
        ("NI kernel (flit alignment)", "1–3"),
        ("clock domain crossing", "2"),
        ("total per NI", "4–10 (pipelined)"),
    ] {
        t.row(&[s.into(), c.into()]);
    }
    t.print("E2c — paper latency budget (reference)");

    // Shape checks: per-pair shell-path overhead must fall within the
    // paper's 2×(4..10) window, and the kernel path must be cheaper.
    assert!(kmin < smin, "shells add latency on top of the kernel");
    assert!(
        (8..=20).contains(&smin),
        "min pair overhead {smin} vs paper 8–20 per pair"
    );
    assert!(
        smax <= 26,
        "max pair overhead {smax} should stay near the paper window"
    );
}
