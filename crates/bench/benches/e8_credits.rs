//! E8 — §4.1 end-to-end flow control: credits piggyback on reverse packets;
//! when no reverse data exists they travel as credit-only packets whose
//! bandwidth cost the **credit threshold** bounds; and the destination
//! buffer can never overflow (checked as a hard invariant).
//!
//! A unidirectional stream forces all credits onto dedicated packets; the
//! credit threshold sweep shows the §4.1 batching effect. A bidirectional
//! run then shows piggybacking eliminating almost all credit-only packets.

use aethereal_bench::table::f3;
use aethereal_bench::{stream_system, StreamSetup, Table};
use aethereal_proto::{StreamSink, StreamSource};

struct Outcome {
    delivered: usize,
    credit_only: u64,
    reverse_headers: u64,
}

fn run_unidirectional(credit_threshold: u32) -> Outcome {
    let (mut sys, _cfg) = stream_system(StreamSetup {
        credit_threshold,
        ..Default::default()
    });
    sys.bind_raw(1, 1, vec![1], Box::new(StreamSource::counting(u64::MAX)));
    let sink = sys.bind_raw(2, 1, vec![1], Box::new(StreamSink::new()));
    sys.run(20_000);
    let st = sys.nis[2].kernel.channel(1).stats();
    assert_eq!(
        sys.noc.be_overflows(),
        0,
        "credit discipline must prevent overflow"
    );
    Outcome {
        delivered: sys.raw_ip_as::<StreamSink>(sink).received().len(),
        credit_only: st.credit_only_tx,
        reverse_headers: st.packets_tx,
    }
}

fn main() {
    let mut t = Table::new(&[
        "credit threshold",
        "words delivered",
        "credit-only packets",
        "reverse words / delivered word",
    ]);
    let mut last_credit_only = u64::MAX;
    for threshold in [1u32, 2, 4, 8] {
        let o = run_unidirectional(threshold);
        t.row(&[
            threshold.to_string(),
            o.delivered.to_string(),
            o.credit_only.to_string(),
            f3(o.reverse_headers as f64 / o.delivered.max(1) as f64),
        ]);
        assert!(
            o.credit_only <= last_credit_only,
            "higher credit threshold must not increase credit packets"
        );
        last_credit_only = o.credit_only;
        assert!(o.delivered > 1_000, "stream must make progress");
    }
    t.print("E8a — credit threshold vs credit-only packet overhead (unidirectional)");
    println!(
        "shape (§4.1): raising the credit threshold batches credits into fewer \
         credit-only packets, reclaiming reverse-link bandwidth."
    );

    // ---- Piggybacking: bidirectional traffic -------------------------------
    // Reverse data on the same channel pair gives the credits a free ride.
    let (mut sys, _cfg) = stream_system(StreamSetup {
        credit_threshold: 31,
        ..Default::default()
    });
    sys.bind_raw(1, 1, vec![1], Box::new(StreamSource::counting(u64::MAX)));
    let sink = sys.bind_raw(2, 1, vec![1], Box::new(StreamSink::new()));
    // Make the sink side also produce data back to NI1 on the same channel.
    sys.bind_raw(2, 1, vec![1], Box::new(StreamSource::counting(u64::MAX)));
    let back = sys.bind_raw(1, 1, vec![1], Box::new(StreamSink::new()));
    sys.run(20_000);
    let st2 = sys.nis[2].kernel.channel(1).stats();
    let fwd = sys.raw_ip_as::<StreamSink>(sink).received().len();
    let rev = sys.raw_ip_as::<StreamSink>(back).received().len();
    println!(
        "\nE8b — piggybacking: bidirectional stream delivered {fwd} fwd / {rev} rev words; \
         sink-side credit-only packets: {} (credits ride on data packets); \
         credits piggybacked: {}",
        st2.credit_only_tx, st2.credits_tx
    );
    assert!(rev > 1_000, "reverse data flows");
    assert!(
        st2.credit_only_tx < 5,
        "piggybacking should eliminate almost all credit-only packets"
    );
    assert_eq!(sys.noc.be_overflows(), 0);
}
