//! E11 — sharded-execution scaling: sequential vs sharded (lockstep on one
//! thread) vs parallel (one worker thread per shard) across mesh sizes,
//! shard counts and traffic patterns, plus the activity-set scheduler's
//! idle-region skip.
//!
//! This experiment has no counterpart in the paper — it evaluates the
//! *simulator's* execution core, not the modeled hardware. Throughput is
//! verified to be identical across execution modes (the parity invariant),
//! so only wall-clock differs.

use aethereal_bench::{
    sharded_received, sharded_stream_mesh, single_received, stream_mesh, MeshTraffic, Table,
};
use std::time::Instant;

const CYCLES: u64 = 2_000;

fn seq_ms(width: usize, height: usize, traffic: MeshTraffic) -> (f64, u64) {
    let (mut sys, _, sinks) = stream_mesh(width, height, traffic);
    sys.run(200); // warmup
    let start = Instant::now();
    sys.run(CYCLES);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, single_received(&sys, &sinks))
}

fn sharded_ms(
    width: usize,
    height: usize,
    traffic: MeshTraffic,
    shards: usize,
    parallel: bool,
) -> (f64, u64) {
    let (mut sharded, sinks) = sharded_stream_mesh(width, height, traffic, shards);
    sharded.run(200); // warmup
    let start = Instant::now();
    if parallel {
        sharded.run_parallel(CYCLES);
    } else {
        sharded.run(CYCLES);
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, sharded_received(&sharded, &sinks))
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "sharded-execution scaling over {CYCLES} measured cycles \
         (host exposes {cores} core(s); parallel speedup is bounded by that)\n"
    );

    let mut t = Table::new(&[
        "mesh",
        "traffic",
        "mode",
        "ms",
        "speedup vs seq",
        "words recv",
    ]);
    for &(w, h) in &[(4usize, 4usize), (8, 8)] {
        for &(traffic, name) in &[
            (MeshTraffic::Uniform, "uniform"),
            (MeshTraffic::Hotspot, "hotspot"),
        ] {
            let (base_ms, base_words) = seq_ms(w, h, traffic);
            t.row(&[
                format!("{w}x{h}"),
                name.to_string(),
                "sequential".to_string(),
                format!("{base_ms:.2}"),
                "1.00".to_string(),
                base_words.to_string(),
            ]);
            for shards in [2usize, 4] {
                if shards > h {
                    continue;
                }
                for parallel in [false, true] {
                    let (ms, words) = sharded_ms(w, h, traffic, shards, parallel);
                    t.row(&[
                        format!("{w}x{h}"),
                        name.to_string(),
                        format!(
                            "{} x{shards}",
                            if parallel { "parallel" } else { "sharded" }
                        ),
                        format!("{ms:.2}"),
                        format!("{:.2}", base_ms / ms),
                        words.to_string(),
                    ]);
                }
            }
        }
    }
    println!("{}", t.render());

    // The activity-set scheduler: traffic confined to the top row band of
    // an 8x8 mesh. The idle regions must cost (almost) nothing: compare
    // against the same streams on a stand-alone 8x2 mesh.
    let mut t = Table::new(&["scenario", "mode", "ms"]);
    let (seq, _) = seq_ms(8, 8, MeshTraffic::BusyBand);
    t.row(&[
        "8x8 busy band".into(),
        "sequential (whole mesh ticks)".into(),
        format!("{seq:.2}"),
    ]);
    let (mixed, _) = sharded_ms(8, 8, MeshTraffic::BusyBand, 4, false);
    t.row(&[
        "8x8 busy band".into(),
        "sharded x4 (3 regions sleep)".into(),
        format!("{mixed:.2}"),
    ]);
    let (alone, _) = seq_ms(8, 2, MeshTraffic::BusyBand);
    t.row(&[
        "8x2 band alone".into(),
        "sequential (lower bound)".into(),
        format!("{alone:.2}"),
    ]);
    let (idle, _) = sharded_ms(8, 8, MeshTraffic::Idle, 4, false);
    t.row(&[
        "8x8 fully idle".into(),
        "sharded x4 (all sleep)".into(),
        format!("{idle:.2}"),
    ]);
    println!("{}", t.render());
    println!(
        "idle-region skip: mixed sharded run costs {:.2}x the busy band alone \
         (1.0 = idle regions are free); whole-mesh sequential pays {:.2}x",
        mixed / alone,
        seq / alone
    );
}
