//! E11 — sharded-execution scaling: sequential vs sharded (lockstep on one
//! thread) vs parallel (one worker thread per shard) across mesh sizes,
//! shard counts and traffic patterns, plus the activity-set scheduler's
//! idle-region skip.
//!
//! This experiment has no counterpart in the paper — it evaluates the
//! *simulator's* execution core, not the modeled hardware. Throughput is
//! verified to be identical across execution modes (the parity invariant),
//! so only wall-clock differs.
//!
//! Besides the human-readable tables, a worker-threads × shards × slack-
//! batch sweep runs under the calibrated harness and lands in `BENCH_JSON`
//! (when set), each record tagged with its parameters plus the host's
//! `host_parallelism` and the `worker_threads` it drove — so scaling
//! history stays comparable across differently-provisioned hosts.

use aethereal_bench::harness::Criterion;
use aethereal_bench::{
    sharded_received, sharded_stream_mesh, single_received, stream_mesh, MeshTraffic, Table,
};
use std::time::Instant;

const CYCLES: u64 = 2_000;

fn seq_ms(width: usize, height: usize, traffic: MeshTraffic) -> (f64, u64) {
    let (mut sys, _, sinks) = stream_mesh(width, height, traffic);
    sys.run(200); // warmup
    let start = Instant::now();
    sys.run(CYCLES);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, single_received(&sys, &sinks))
}

fn sharded_ms(
    width: usize,
    height: usize,
    traffic: MeshTraffic,
    shards: usize,
    parallel: bool,
) -> (f64, u64) {
    let (mut sharded, sinks) = sharded_stream_mesh(width, height, traffic, shards);
    sharded.run(200); // warmup
    let start = Instant::now();
    if parallel {
        sharded.run_parallel(CYCLES);
    } else {
        sharded.run(CYCLES);
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, sharded_received(&sharded, &sinks))
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "sharded-execution scaling over {CYCLES} measured cycles \
         (host exposes {cores} core(s); parallel speedup is bounded by that)\n"
    );

    let mut t = Table::new(&[
        "mesh",
        "traffic",
        "mode",
        "ms",
        "speedup vs seq",
        "words recv",
    ]);
    for &(w, h) in &[(4usize, 4usize), (8, 8)] {
        for &(traffic, name) in &[
            (MeshTraffic::Uniform, "uniform"),
            (MeshTraffic::Hotspot, "hotspot"),
        ] {
            let (base_ms, base_words) = seq_ms(w, h, traffic);
            t.row(&[
                format!("{w}x{h}"),
                name.to_string(),
                "sequential".to_string(),
                format!("{base_ms:.2}"),
                "1.00".to_string(),
                base_words.to_string(),
            ]);
            for shards in [2usize, 4] {
                if shards > h {
                    continue;
                }
                for parallel in [false, true] {
                    let (ms, words) = sharded_ms(w, h, traffic, shards, parallel);
                    t.row(&[
                        format!("{w}x{h}"),
                        name.to_string(),
                        format!(
                            "{} x{shards}",
                            if parallel { "parallel" } else { "sharded" }
                        ),
                        format!("{ms:.2}"),
                        format!("{:.2}", base_ms / ms),
                        words.to_string(),
                    ]);
                }
            }
        }
    }
    println!("{}", t.render());

    // The activity-set scheduler: traffic confined to the top row band of
    // an 8x8 mesh. The idle regions must cost (almost) nothing: compare
    // against the same streams on a stand-alone 8x2 mesh.
    let mut t = Table::new(&["scenario", "mode", "ms"]);
    let (seq, _) = seq_ms(8, 8, MeshTraffic::BusyBand);
    t.row(&[
        "8x8 busy band".into(),
        "sequential (whole mesh ticks)".into(),
        format!("{seq:.2}"),
    ]);
    let (mixed, _) = sharded_ms(8, 8, MeshTraffic::BusyBand, 4, false);
    t.row(&[
        "8x8 busy band".into(),
        "sharded x4 (3 regions sleep)".into(),
        format!("{mixed:.2}"),
    ]);
    let (alone, _) = seq_ms(8, 2, MeshTraffic::BusyBand);
    t.row(&[
        "8x2 band alone".into(),
        "sequential (lower bound)".into(),
        format!("{alone:.2}"),
    ]);
    let (idle, _) = sharded_ms(8, 8, MeshTraffic::Idle, 4, false);
    t.row(&[
        "8x8 fully idle".into(),
        "sharded x4 (all sleep)".into(),
        format!("{idle:.2}"),
    ]);
    println!("{}", t.render());
    println!(
        "idle-region skip: mixed sharded run costs {:.2}x the busy band alone \
         (1.0 = idle regions are free); whole-mesh sequential pays {:.2}x",
        mixed / alone,
        seq / alone
    );

    // The recorded sweep: worker threads (1 = sequential runner, `shards`
    // = one worker per region) × shard count × slack batch on the busy
    // uniform 8x8 mesh, with the monolithic run as the reference record.
    println!("\nrecorded scaling sweep (8x8 uniform, 1k cycles per iteration):");
    let mut c = Criterion::new();
    c.set_worker_threads(1);
    c.bench_function("scaling_8x8_uniform_mono_1k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::Uniform);
        sys.run(200);
        b.iter(|| sys.run(1_000));
    });
    for &shards in &[2usize, 4] {
        for &batch in &[1u64, 2, 16] {
            for parallel in [false, true] {
                let threads = if parallel { shards as u64 } else { 1 };
                let name = format!(
                    "scaling_8x8_uniform_shard{shards}_b{batch}_{}_1k",
                    if parallel { "par" } else { "seq" }
                );
                c.set_worker_threads(threads);
                c.bench_with_params(
                    &name,
                    &[
                        ("shards", shards as u64),
                        ("batch", batch),
                        ("threads", threads),
                    ],
                    |b| {
                        let (mut sharded, _) =
                            sharded_stream_mesh(8, 8, MeshTraffic::Uniform, shards);
                        sharded.set_batch(batch);
                        sharded.run(200);
                        if parallel {
                            b.iter(|| sharded.run_parallel(1_000));
                        } else {
                            b.iter(|| sharded.run(1_000));
                        }
                    },
                );
            }
        }
    }
    if let Some(mono) = c.median_of("scaling_8x8_uniform_mono_1k") {
        for (name, bench) in [
            (
                "scaling_seq_overhead_shard2_b16",
                "scaling_8x8_uniform_shard2_b16_seq_1k",
            ),
            (
                "scaling_par_speedup_shard2_b16",
                "scaling_8x8_uniform_shard2_b16_par_1k",
            ),
            (
                "scaling_par_speedup_shard4_b16",
                "scaling_8x8_uniform_shard4_b16_par_1k",
            ),
        ] {
            if let Some(m) = c.median_of(bench) {
                c.derived(name, mono / m);
            }
        }
    }
    c.finalize();
}
