//! E12 — the analytical GT fast-forward backend.
//!
//! No counterpart in the paper: this experiment evaluates the *simulator's*
//! fast-forward engine seam, not the modeled hardware. Three questions:
//!
//! 1. **Pure-GT win** — on a 16x16 mesh of endless GT streams (state
//!    strictly periodic in the slot-table rotation), how much faster is a
//!    run when the engine certifies one rotation and extrapolates the rest?
//!    The `ff_speedup_pure_gt_16x16` derived ratio is the PR acceptance
//!    number (target ≥ 5x).
//! 2. **Mixed-traffic safety** — on the BE uniform 8x8 mesh (never
//!    certifiable: wormhole state and credit budgets drift), the enabled
//!    backend must cost (nearly) nothing: probes are gated on eligibility
//!    and back off on decline. `ff_mixed_overhead` is on/off time (target
//!    ≤ 1.05).
//! 3. **Sharded composition** — a one-row GT band on a 16x16 mesh split in
//!    two: the busy region fast-forwards inside its sole-awake window while
//!    the idle region sleeps, at slack batch 1 and 16.
//!
//! All modes are bit-identical by construction — pinned by the
//! `ff_parity` facade tests, re-checked cheaply here before timing.

use aethereal_bench::harness::Criterion;
use aethereal_bench::{criterion_group, criterion_main};
use aethereal_bench::{
    gt_received, gt_stream_mesh, sharded_gt_stream_mesh, stream_mesh, MeshTraffic,
};

const CYCLES: u64 = 10_000;

/// Cycles ticked before timing: past the startup transient (queues filling
/// toward the periodic steady state), so samples measure the regime each
/// mode settles into, not the one-off warmup.
const WARMUP: u64 = 2_000;

fn bench_pure_gt(c: &mut Criterion) {
    // Parity spot-check before timing anything.
    let mut ff = gt_stream_mesh(16, 16, 16);
    let mut cc = gt_stream_mesh(16, 16, 16);
    ff.set_fast_forward(true);
    ff.run(CYCLES);
    cc.run(CYCLES);
    assert_eq!(
        gt_received(&ff, 16, 16),
        gt_received(&cc, 16, 16),
        "fast-forward broke delivery parity"
    );
    assert!(ff.ff_stats().jumps > 0, "pure-GT 16x16 must certify");

    c.bench_function("gt16x16_ff_off_10k", |b| {
        let mut sys = gt_stream_mesh(16, 16, 16);
        sys.run(WARMUP);
        b.iter(|| sys.run(CYCLES));
    });
    c.bench_function("gt16x16_ff_on_10k", |b| {
        let mut sys = gt_stream_mesh(16, 16, 16);
        sys.set_fast_forward(true);
        sys.run(WARMUP);
        b.iter(|| sys.run(CYCLES));
    });
    let off = c.median_of("gt16x16_ff_off_10k").expect("just measured");
    let on = c.median_of("gt16x16_ff_on_10k").expect("just measured");
    c.derived("ff_speedup_pure_gt_16x16", off / on);
}

fn bench_mixed(c: &mut Criterion) {
    c.bench_function("mesh8x8_uniform_ff_off_10k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::Uniform);
        sys.run(WARMUP);
        b.iter(|| sys.run(CYCLES));
    });
    c.bench_function("mesh8x8_uniform_ff_on_10k", |b| {
        let (mut sys, _, _) = stream_mesh(8, 8, MeshTraffic::Uniform);
        sys.set_fast_forward(true);
        sys.run(WARMUP);
        b.iter(|| sys.run(CYCLES));
    });
    let off = c
        .median_of("mesh8x8_uniform_ff_off_10k")
        .expect("just measured");
    let on = c
        .median_of("mesh8x8_uniform_ff_on_10k")
        .expect("just measured");
    c.derived("ff_mixed_overhead", on / off);
}

fn bench_sharded(c: &mut Criterion) {
    for batch in [1u64, 16] {
        for ff_on in [false, true] {
            let name = format!(
                "gt16x16_band_shard2_b{batch}_ff_{}_10k",
                if ff_on { "on" } else { "off" }
            );
            c.bench_with_params(&name, &[("shards", 2), ("batch", batch)], |b| {
                let mut sharded = sharded_gt_stream_mesh(16, 16, 1, 2);
                sharded.set_batch(batch);
                sharded.set_fast_forward(ff_on);
                sharded.run(WARMUP);
                b.iter(|| sharded.run(CYCLES));
            });
        }
    }
    let off = c
        .median_of("gt16x16_band_shard2_b16_ff_off_10k")
        .expect("just measured");
    let on = c
        .median_of("gt16x16_band_shard2_b16_ff_on_10k")
        .expect("just measured");
    c.derived("ff_speedup_sharded_band_b16", off / on);
}

criterion_group!(e12, bench_pure_gt, bench_mixed, bench_sharded);
criterion_main!(e12);
