//! E7 — §4.1 threshold mechanism: "to optimize the NoC utilization, it is
//! preferable to send longer packets… a configurable threshold mechanism
//! skips a channel as long as the sendable data is below the threshold",
//! with the **flush** signal overriding the threshold to prevent
//! starvation.
//!
//! A paced source (one word every few cycles) streams over a BE connection
//! while the data threshold sweeps 0..8: higher thresholds batch words into
//! longer packets (fewer header words per payload word) at the price of
//! delivery latency. A final experiment parks one word below a high
//! threshold and shows the flush pushing it through.

use aethereal_bench::table::f3;
use aethereal_bench::{stream_system, StreamSetup, Table};
use aethereal_proto::ip::{ClockedWith, RawPort};
use aethereal_proto::RawIp;

/// A source producing one word every `period` port cycles.
struct PacedSource {
    period: u64,
    produced: u64,
}

impl<'a> ClockedWith<RawPort<'a>> for PacedSource {
    fn absorb(&mut self, _port: &mut RawPort<'a>, _now: u64) {}

    fn emit(&mut self, port: &mut RawPort<'a>, now: u64) {
        if now.is_multiple_of(self.period) && port.kernel.src_space(port.channels[0]) > 0 {
            port.kernel
                .push_src(port.channels[0], self.produced as u32, now)
                .expect("space checked");
            self.produced += 1;
        }
    }
}

impl RawIp for PacedSource {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn run_threshold(threshold: u32) -> (f64, f64, u64) {
    let (mut sys, _cfg) = stream_system(StreamSetup {
        data_threshold: threshold,
        ..Default::default()
    });
    sys.bind_raw(
        1,
        1,
        vec![1],
        Box::new(PacedSource {
            period: 6,
            produced: 0,
        }),
    );
    sys.run(30_000);
    let st = sys.nis[1].kernel.channel(1).stats();
    let data_packets = st.packets_tx - st.credit_only_tx;
    let avg_payload = if data_packets > 0 {
        st.words_tx as f64 / data_packets as f64
    } else {
        0.0
    };
    // Header overhead of the data path: one header word per data packet.
    let overhead = if st.words_tx > 0 {
        data_packets as f64 / (st.words_tx + data_packets) as f64
    } else {
        1.0
    };
    // Latency proxy: words still parked in the source queue at the end.
    let parked = sys.nis[1].kernel.channel(1).src_level() as u64;
    (avg_payload, overhead, parked)
}

fn main() {
    let mut t = Table::new(&[
        "data threshold",
        "avg packet payload (w)",
        "header overhead",
        "words parked at end",
    ]);
    let mut last_payload = 0.0;
    for threshold in [0u32, 1, 2, 4, 6, 8] {
        let (avg_payload, overhead, parked) = run_threshold(threshold);
        t.row(&[
            threshold.to_string(),
            f3(avg_payload),
            f3(overhead),
            parked.to_string(),
        ]);
        assert!(
            avg_payload + 1e-9 >= last_payload,
            "packets must get longer with the threshold"
        );
        last_payload = avg_payload;
    }
    t.print("E7a — data threshold sweep (paced source, 1 word / 6 cycles)");
    println!(
        "shape (§4.1): longer packets and lower header overhead as the threshold \
         grows; buffered words wait longer (the starvation risk the flush solves)."
    );

    // ---- Flush demonstration ------------------------------------------------
    let (mut sys, _cfg) = stream_system(StreamSetup {
        data_threshold: 8,
        ..Default::default()
    });
    sys.nis[1].kernel.push_src(1, 0xFEED, 0).expect("room");
    sys.run(2_000);
    let stuck = sys.nis[2].kernel.dst_level(1, sys.cycle());
    assert_eq!(stuck, 0, "below threshold: the word must be held back");
    sys.nis[1].kernel.flush(1);
    sys.run(200);
    let delivered = sys.nis[2].kernel.dst_level(1, sys.cycle());
    assert_eq!(delivered, 1, "flush must push the word through");
    println!(
        "\nE7b — flush override: word below threshold held for 2000 cycles, \
         delivered {delivered} word within 200 cycles of the flush signal \
         (threshold bypass, §4.1)."
    );
}
