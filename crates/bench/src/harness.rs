//! A minimal criterion-compatible micro-benchmark harness.
//!
//! The build container has no crates registry, so the `micro` bench target
//! runs on this in-tree harness instead of `criterion`. It keeps the same
//! calling convention — [`Criterion::bench_function`] with a closure over a
//! [`Bencher`], plus the [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — and measures by
//! doubling the iteration count until a sample window exceeds a minimum
//! duration, then reporting the median, mean and min of the per-iteration
//! times over several samples.
//!
//! Results print as a table and are also appended to the path given in
//! `BENCH_JSON` (one JSON object per benchmark, one file for the run) so CI
//! and `BENCH_baseline.json` can track them.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (override: `BENCH_SAMPLES`, e.g.
/// for a fast CI smoke run).
const SAMPLES: usize = 15;

/// Minimum duration a sample window must reach while calibrating
/// (override: `BENCH_MIN_SAMPLE_MS`).
const MIN_SAMPLE: Duration = Duration::from_millis(20);

fn samples() -> usize {
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(SAMPLES)
}

fn min_sample() -> Duration {
    std::env::var("BENCH_MIN_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(MIN_SAMPLE)
}

/// Per-iteration timing statistics of one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median of the per-sample mean iteration times.
    pub median_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Iterations per sample used after calibration.
    pub iters_per_sample: u64,
}

/// One recorded benchmark: its name, the scenario parameters it ran with
/// (e.g. shard count and batch size — emitted into the `BENCH_JSON`
/// record so perf history stays self-describing), the host's available
/// parallelism and the worker-thread count the scenario used (so
/// multi-core scaling numbers land automatically when the host allows),
/// and the measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name.
    pub name: String,
    /// Scenario parameters, in declaration order.
    pub params: Vec<(String, u64)>,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_parallelism: u64,
    /// Worker threads the scenario ran with (1 = single-threaded driver;
    /// see [`Criterion::set_worker_threads`]).
    pub worker_threads: u64,
    /// The timing measurement.
    pub measurement: Measurement,
}

/// The measuring host's available parallelism (1 when unknown).
pub fn host_parallelism() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Runs the body handed to [`Bencher::iter`] and times it.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body` over the calibrated iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver (criterion-compatible subset).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchRecord>,
    derived: Vec<(String, f64)>,
    worker_threads: u64,
}

impl Criterion {
    /// Creates a driver.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Declares how many worker threads the following benchmarks drive
    /// (e.g. before a `run_parallel` sweep); recorded into every
    /// subsequent [`BenchRecord`]. 0 (the default) records as 1.
    pub fn set_worker_threads(&mut self, n: u64) -> &mut Self {
        self.worker_threads = n;
        self
    }

    /// Benchmarks `f`, which must call [`Bencher::iter`] exactly once.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.bench_with_params(name, &[], f)
    }

    /// Like [`Criterion::bench_function`], recording scenario parameters
    /// (e.g. `[("shards", 2), ("batch", 16)]`) into the result so the
    /// `BENCH_JSON` history carries them alongside the timings.
    pub fn bench_with_params<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        params: &[(&str, u64)],
        mut f: F,
    ) -> &mut Self {
        let min_sample = min_sample();
        // Calibrate: double iterations until the sample window is long
        // enough for the clock to be negligible.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= min_sample || iters >= 1 << 40 {
                break;
            }
            // Jump close to the target, at least doubling.
            let factor = (min_sample.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)).ceil();
            iters = (iters as f64 * factor.clamp(2.0, 100.0)) as u64;
        }
        let mut per_iter: Vec<f64> = (0..samples())
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let m = Measurement {
            median_ns: per_iter[per_iter.len() / 2],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            min_ns: per_iter[0],
            iters_per_sample: iters,
        };
        println!(
            "{name:<40} median {:>12}  mean {:>12}  min {:>12}  ({} iters/sample)",
            fmt_ns(m.median_ns),
            fmt_ns(m.mean_ns),
            fmt_ns(m.min_ns),
            m.iters_per_sample
        );
        self.results.push(BenchRecord {
            name: name.to_string(),
            params: params.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            host_parallelism: host_parallelism(),
            worker_threads: self.worker_threads.max(1),
            measurement: m,
        });
        self
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[BenchRecord] {
        &self.results
    }

    /// The median of a recorded benchmark, if it ran.
    pub fn median_of(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.measurement.median_ns)
    }

    /// Records a derived metric (a ratio or efficiency computed from other
    /// measurements); printed and included in the `BENCH_JSON` output under
    /// `"derived"`.
    pub fn derived(&mut self, name: &str, value: f64) -> &mut Self {
        println!("{name:<40} {value:>12.3}");
        self.derived.push((name.to_string(), value));
        self
    }

    /// Writes results as JSON to the `BENCH_JSON` path, if set.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let m = &r.measurement;
            let params = if r.params.is_empty() {
                String::new()
            } else {
                let body: Vec<String> = r
                    .params
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect();
                format!(", \"params\": {{{}}}", body.join(", "))
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\"{params}, \"host_parallelism\": {}, \
                 \"worker_threads\": {}, \"median_ns\": {:.3}, \"mean_ns\": {:.3}, \
                 \"min_ns\": {:.3}, \"iters_per_sample\": {}}}",
                r.name,
                r.host_parallelism,
                r.worker_threads,
                m.median_ns,
                m.mean_ns,
                m.min_ns,
                m.iters_per_sample
            ));
        }
        out.push_str("\n  ],\n  \"derived\": [\n");
        for (i, (name, v)) in self.derived.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("    {{\"name\": \"{name}\", \"value\": {v:.4}}}"));
        }
        out.push_str("\n  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(group_a, group_b)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::new();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::new();
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
        let r = &c.results()[0];
        assert_eq!(r.name, "noop_add");
        assert!(r.params.is_empty());
        let m = &r.measurement;
        assert!(m.median_ns > 0.0 && m.median_ns < 1_000.0);
    }

    #[test]
    fn params_recorded_with_result() {
        let mut c = Criterion::new();
        c.bench_with_params("tagged", &[("shards", 2), ("batch", 16)], |b| {
            b.iter(|| 1u64);
        });
        let r = &c.results()[0];
        assert_eq!(
            r.params,
            vec![("shards".to_string(), 2), ("batch".to_string(), 16)]
        );
    }

    #[test]
    fn host_parallelism_recorded() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1u64));
        c.set_worker_threads(4)
            .bench_function("threaded", |b| b.iter(|| 1u64));
        assert_eq!(c.results()[0].host_parallelism, host_parallelism());
        assert!(c.results()[0].host_parallelism >= 1);
        assert_eq!(c.results()[0].worker_threads, 1);
        assert_eq!(c.results()[1].worker_threads, 4);
    }
}
