//! Pure-GT streaming meshes for the fast-forward benches.
//!
//! Unlike [`shard_scenarios`](crate::shard_scenarios) (BE traffic under
//! contention), these build workloads the analytical fast-forward backend
//! can certify: endless GT streams between horizontally adjacent NIs, all
//! state strictly periodic in the 24-cycle slot-table rotation. Each pair
//! reserves four forward slots and two reverse (credit) slots on its own
//! links, so no two streams ever share a wire and the calendar stays
//! conflict-free at any mesh size.
//!
//! `busy_rows` confines the streams to the top rows of the mesh: with a
//! row-band [`Partition`], the remaining regions sleep and the shard
//! runner's sole-awake fast-forward window opens.

use aethereal_cfg::shard::ShardedSystem;
use aethereal_cfg::{presets, NocSpec, NocSystem, TopologySpec};
use aethereal_ni::kernel::regs::{CTRL_ENABLE, CTRL_GT};
use aethereal_ni::kernel::{chan_reg_addr, pack_path_rqid, slot_reg_addr, ChanReg};
use aethereal_proto::{CountingSink, StreamSource};
use noc_sim::shard::Partition;

/// Builds a `width × height` mesh (one raw NI per router, stream ports at
/// clock div 4) with an endless GT stream between each horizontally
/// adjacent NI pair of the top `busy_rows` rows. `width` must be even.
pub fn gt_stream_mesh(width: usize, height: usize, busy_rows: usize) -> NocSystem {
    assert!(width.is_multiple_of(2), "pairs need an even mesh width");
    assert!(busy_rows <= height);
    let mut spec = NocSpec::new(
        TopologySpec::Mesh {
            width,
            height,
            nis_per_router: 1,
        },
        (0..width * height)
            .map(|id| presets::raw_ni(id, 1))
            .collect(),
    );
    for ni in &mut spec.nis {
        // Production (6 words per 24-cycle rotation) stays under the four
        // reserved forward slots, so queues settle into a periodic steady
        // state instead of drifting.
        ni.kernel.ports[1].clock_div = 4;
    }
    let topo = spec.topology.build();
    let mut sys = NocSystem::from_spec(&spec);
    for row in 0..busy_rows {
        for pair in 0..width / 2 {
            let src = row * width + 2 * pair;
            let dst = src + 1;
            let fwd = topo.route(src, dst).expect("adjacent route");
            let rev = topo.route(dst, src).expect("adjacent route");
            for (ni, path, slots) in [
                (src, &fwd, &[0usize, 2, 4, 6][..]),
                (dst, &rev, &[1, 5][..]),
            ] {
                let k = &mut sys.nis[ni].kernel;
                k.reg_write(chan_reg_addr(1, ChanReg::Ctrl), CTRL_ENABLE | CTRL_GT)
                    .expect("register exists");
                k.reg_write(chan_reg_addr(1, ChanReg::Space), 8)
                    .expect("register exists");
                k.reg_write(chan_reg_addr(1, ChanReg::PathRqid), pack_path_rqid(path, 1))
                    .expect("register exists");
                for &s in slots {
                    k.reg_write(slot_reg_addr(s), 2).expect("register exists");
                }
            }
            sys.bind_raw(src, 1, vec![1], Box::new(StreamSource::counting(u64::MAX)));
            sys.bind_raw(dst, 1, vec![1], Box::new(CountingSink::new()));
        }
    }
    sys
}

/// [`gt_stream_mesh`] split into `shards` row bands.
pub fn sharded_gt_stream_mesh(
    width: usize,
    height: usize,
    busy_rows: usize,
    shards: usize,
) -> ShardedSystem {
    let sys = gt_stream_mesh(width, height, busy_rows);
    let topo = noc_sim::Topology::mesh(width, height, 1);
    let partition = Partition::mesh_rows(width, height, shards);
    ShardedSystem::new(sys, &topo, &partition)
}

/// Total words received across all [`CountingSink`]s of a pure-GT mesh.
pub fn gt_received(sys: &NocSystem, width: usize, busy_rows: usize) -> u64 {
    let mut total = 0;
    for row in 0..busy_rows {
        for pair in 0..width / 2 {
            let dst = row * width + 2 * pair + 1;
            total += sys.raw_ip_at::<CountingSink>(dst).count();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gt_mesh_streams_flow_and_fast_forward_certifies() {
        let mut ff = gt_stream_mesh(4, 4, 4);
        let mut cc = gt_stream_mesh(4, 4, 4);
        ff.set_fast_forward(true);
        ff.run(10_000);
        cc.run(10_000);
        assert!(ff.ff_stats().jumps > 0, "pure-GT mesh must certify");
        assert_eq!(ff.noc.gt_conflicts(), 0);
        let (f, c) = (gt_received(&ff, 4, 4), gt_received(&cc, 4, 4));
        assert_eq!(f, c, "fast-forward changed delivery");
        assert!(f > 8 * 1_000, "streams actually flowed (got {f})");
    }

    #[test]
    fn banded_gt_mesh_fast_forwards_when_sharded() {
        let mut sharded = sharded_gt_stream_mesh(4, 4, 1, 2);
        sharded.set_fast_forward(true);
        sharded.run(10_000);
        assert!(
            sharded.ff_stats().jumps > 0,
            "sole-awake band region must fast-forward"
        );
    }
}
