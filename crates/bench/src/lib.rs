//! # aethereal-bench — harness utilities for regenerating the paper's
//! evaluation
//!
//! Each `benches/eN_*.rs` target (run via `cargo bench`) regenerates one
//! table or figure of the DATE 2004 paper; see `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results. This library holds the shared pieces: aligned table printing
//! and canonical system builders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gt_scenarios;
pub mod harness;
pub mod scenarios;
pub mod shard_scenarios;
pub mod table;

pub use gt_scenarios::{gt_received, gt_stream_mesh, sharded_gt_stream_mesh};
pub use scenarios::{master_slave_system, stream_system, StreamSetup};
pub use shard_scenarios::{
    sharded_received, sharded_stream_mesh, single_received, stream_mesh, CountingSink, MeshTraffic,
};
pub use table::Table;
