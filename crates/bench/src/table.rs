//! Minimal aligned-table printing for bench reports.

/// An aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["123".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("  a  bbbb"));
        assert!(r.contains("123     4"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }
}
