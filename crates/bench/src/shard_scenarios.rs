//! Mesh-scale streaming scenarios for the sharded-execution benches.
//!
//! These build `width × height` meshes (one raw NI per router) with
//! point-to-point BE stream traffic configured **directly** through the
//! local register files (the kernel tests' idiom — cheaper to set up than
//! driving the runtime configurator for every stream of a big mesh).
//! Routes use the two-level planner (`Topology::route_any`), so mesh size
//! and stream distance are free parameters: any pair on any mesh routes,
//! with headers rewritten at gateway routers where a route exceeds one
//! header.
//!
//! Traffic shapes:
//!
//! * [`MeshTraffic::Idle`] — no IPs at all: the quiescent fast path.
//! * [`MeshTraffic::Uniform`] — every NI streams down its column to the NI
//!   half the mesh height away (a permutation: one stream out and one in
//!   per NI). Every stream crosses every horizontal row-band cut.
//! * [`MeshTraffic::Hotspot`] — a block of center sinks, each fed by
//!   several senders from all quadrants: heavy contention around the
//!   center, boundary credits under pressure.
//! * [`MeshTraffic::BusyBand`] — streams confined to the top two rows: one
//!   busy region, the rest idle (the mixed idle/busy case for the
//!   activity-set scheduler).

use aethereal_cfg::shard::ShardedSystem;
use aethereal_cfg::{presets, NocSpec, NocSystem, TopologySpec};
use aethereal_ni::kernel::regs::CTRL_ENABLE;
use aethereal_ni::kernel::{chan_reg_addr, ext_reg_addr, pack_path_rqid, ChanReg, ChannelId};
use aethereal_proto::ip::{ClockedWith, RawIp, RawPort};
use noc_sim::shard::Partition;
use noc_sim::Topology;

/// Traffic shape over the streaming mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshTraffic {
    /// No IPs bound: fully idle.
    Idle,
    /// Column streams half the mesh height down (all cross the row cuts).
    Uniform,
    /// Many senders into a block of center sinks.
    Hotspot,
    /// Streams confined to the top two rows; the rest of the mesh is idle.
    BusyBand,
}

/// A sink that counts and discards words from all its channels — constant
/// memory under endless sources, unlike `StreamSink`'s recorded trace.
#[derive(Debug, Default)]
pub struct CountingSink {
    received: u64,
}

impl CountingSink {
    /// Creates a sink.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Words consumed so far.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl<'a> ClockedWith<RawPort<'a>> for CountingSink {
    /// Consume one delivered word per channel per port cycle.
    fn absorb(&mut self, port: &mut RawPort<'a>, now: u64) {
        for &ch in port.channels {
            if port.kernel.pop_dst(ch, now).is_some() {
                self.received += 1;
            }
        }
    }

    fn emit(&mut self, _port: &mut RawPort<'a>, _now: u64) {}
}

impl RawIp for CountingSink {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    /// Reacts only to deliveries; never blocks quiescence.
    fn done(&self) -> bool {
        true
    }

    /// The only dynamic state is the received count.
    fn persist(&mut self, p: &mut dyn noc_sim::PersistVisit) {
        p.item(&mut self.received);
    }
}

/// One configured stream: sender NI / tx channel → receiver NI / rx channel.
#[derive(Debug, Clone, Copy)]
struct Stream {
    src: usize,
    dst: usize,
    rx_channel: ChannelId,
}

fn streams_for(width: usize, height: usize, traffic: MeshTraffic) -> Vec<Stream> {
    match traffic {
        MeshTraffic::Idle => Vec::new(),
        MeshTraffic::Uniform => (0..width * height)
            .map(|ni| {
                let (x, y) = (ni % width, ni / width);
                let dst = ((y + height / 2) % height) * width + x;
                Stream {
                    src: ni,
                    dst,
                    rx_channel: 2,
                }
            })
            .collect(),
        MeshTraffic::Hotspot => {
            // Sinks: a 2x2 block at the mesh center; senders: the
            // surrounding block within header reach, round-robined over the
            // sinks' rx channels.
            let (cx, cy) = (width / 2 - 1, height / 2 - 1);
            let sinks = [
                cy * width + cx,
                cy * width + cx + 1,
                (cy + 1) * width + cx,
                (cy + 1) * width + cx + 1,
            ];
            let mut streams = Vec::new();
            let mut j = 0usize;
            for y in cy.saturating_sub(2)..(cy + 4).min(height) {
                for x in cx.saturating_sub(2)..(cx + 4).min(width) {
                    let ni = y * width + x;
                    if sinks.contains(&ni) {
                        continue;
                    }
                    streams.push(Stream {
                        src: ni,
                        dst: sinks[j % sinks.len()],
                        rx_channel: 2 + (j / sinks.len()),
                    });
                    j += 1;
                }
            }
            streams
        }
        MeshTraffic::BusyBand => (0..width)
            .map(|x| Stream {
                src: x,
                dst: width + x, // row 0 → row 1: stays inside the top band
                rx_channel: 2,
            })
            .collect(),
    }
}

/// Builds the streaming mesh: spec, direct channel configuration, and
/// endless sources with counting sinks. Returns the system, its topology
/// and the sink NIs (throughput readout: [`single_received`] /
/// [`sharded_received`]).
pub fn stream_mesh(
    width: usize,
    height: usize,
    traffic: MeshTraffic,
) -> (NocSystem, Topology, Vec<usize>) {
    let streams = streams_for(width, height, traffic);
    let n = width * height;
    // Channel needs per NI: ch1 = tx; rx channels 2.. as assigned.
    let mut channels = vec![1usize; n];
    for s in &streams {
        channels[s.src] = channels[s.src].max(1);
        channels[s.dst] = channels[s.dst].max(s.rx_channel);
    }
    let spec = NocSpec::new(
        TopologySpec::Mesh {
            width,
            height,
            nis_per_router: 1,
        },
        (0..n).map(|id| presets::raw_ni(id, channels[id])).collect(),
    );
    let topo = spec.topology.build();
    let mut sys = NocSystem::from_spec(&spec);
    for s in &streams {
        let fwd = topo.route_any(s.src, s.dst).expect("any pair routes");
        let rev = topo.route_any(s.dst, s.src).expect("any pair routes");
        let tx = &mut sys.nis[s.src].kernel;
        tx.reg_write(chan_reg_addr(1, ChanReg::Space), 8).unwrap();
        tx.reg_write(chan_reg_addr(1, ChanReg::PathRqid), {
            pack_path_rqid(fwd.header_segment(), s.rx_channel as u8)
        })
        .unwrap();
        for (k, w) in fwd.continuation_words().enumerate() {
            tx.reg_write(ext_reg_addr(1, k), w).unwrap();
        }
        tx.reg_write(chan_reg_addr(1, ChanReg::Ctrl), CTRL_ENABLE)
            .unwrap();
        let rx = &mut sys.nis[s.dst].kernel;
        rx.reg_write(chan_reg_addr(s.rx_channel, ChanReg::Space), 8)
            .unwrap();
        rx.reg_write(chan_reg_addr(s.rx_channel, ChanReg::PathRqid), {
            pack_path_rqid(rev.header_segment(), 1)
        })
        .unwrap();
        for (k, w) in rev.continuation_words().enumerate() {
            rx.reg_write(ext_reg_addr(s.rx_channel, k), w).unwrap();
        }
        rx.reg_write(chan_reg_addr(s.rx_channel, ChanReg::Ctrl), CTRL_ENABLE)
            .unwrap();
    }
    let mut sinks: Vec<usize> = Vec::new();
    for s in &streams {
        sys.bind_raw(
            s.src,
            1,
            vec![1],
            Box::new(aethereal_proto::StreamSource::counting(u64::MAX)),
        );
        if !sinks.contains(&s.dst) {
            sinks.push(s.dst);
        }
    }
    // One counting sink per receiving NI, draining all its rx channels.
    for &ni in &sinks {
        let rx: Vec<ChannelId> = streams
            .iter()
            .filter(|s| s.dst == ni)
            .map(|s| s.rx_channel)
            .collect();
        sys.bind_raw(ni, 1, rx, Box::new(CountingSink::new()));
    }
    (sys, topo, sinks)
}

/// The sharded counterpart: the same mesh split into `shards` row bands.
pub fn sharded_stream_mesh(
    width: usize,
    height: usize,
    traffic: MeshTraffic,
    shards: usize,
) -> (ShardedSystem, Vec<usize>) {
    let (sys, topo, sinks) = stream_mesh(width, height, traffic);
    let partition = Partition::mesh_rows(width, height, shards);
    (ShardedSystem::new(sys, &topo, &partition), sinks)
}

/// Total words consumed across the sink NIs of a sharded run.
pub fn sharded_received(sharded: &ShardedSystem, sinks: &[usize]) -> u64 {
    sinks
        .iter()
        .map(|&ni| sharded.raw_ip_as::<CountingSink>(ni).received())
        .sum()
}

/// Total words consumed across the sink NIs of an unsplit run — the same
/// readout as [`sharded_received`], for apples-to-apples comparisons.
pub fn single_received(sys: &NocSystem, sinks: &[usize]) -> u64 {
    sinks
        .iter()
        .map(|&ni| sys.raw_ip_at::<CountingSink>(ni).received())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mesh_streams_flow_and_shard_cleanly() {
        let (mut sharded, sinks) = sharded_stream_mesh(4, 4, MeshTraffic::Uniform, 2);
        sharded.run(400);
        assert!(sharded_received(&sharded, &sinks) > 200, "streams flow");
        assert_eq!(sharded.gt_conflicts(), 0);
        assert_eq!(sharded.be_overflows(), 0);
    }

    #[test]
    fn sharded_uniform_matches_single_run() {
        let (mut single, _, sinks) = stream_mesh(4, 4, MeshTraffic::Uniform);
        single.run(500);
        let (mut sharded, ssinks) = sharded_stream_mesh(4, 4, MeshTraffic::Uniform, 4);
        sharded.run(500);
        assert_eq!(
            single_received(&single, &sinks),
            sharded_received(&sharded, &ssinks)
        );
    }

    #[test]
    fn hotspot_streams_fit_headers_on_8x8() {
        let (mut sharded, sinks) = sharded_stream_mesh(8, 8, MeshTraffic::Hotspot, 2);
        sharded.run(300);
        assert!(sharded_received(&sharded, &sinks) > 0);
        assert_eq!(sharded.be_overflows(), 0);
    }

    #[test]
    fn busy_band_leaves_other_regions_asleep() {
        let (mut sharded, _) = sharded_stream_mesh(8, 8, MeshTraffic::BusyBand, 4);
        sharded.run(300);
        assert_eq!(
            sharded.awake_count(),
            1,
            "only the busy band stays in the activity set"
        );
    }
}
