//! Canonical systems used by several benches.

use aethereal_cfg::runtime::{ChannelEnd, ConnectionRequest, Service};
use aethereal_cfg::{presets, NocSpec, NocSystem, RuntimeConfigurator, SlotStrategy, TopologySpec};

/// Builds the canonical master/slave system on a `width × height` mesh with
/// two NIs per router — cfg module on NI 0, a master on NI 1, slaves on the
/// remaining attachments — and opens a BE connection master → slave
/// (NI `2·width·height − 1`, the diagonally farthest attachment).
///
/// Returns the system, the configurator and the slave NI id.
pub fn master_slave_system(width: usize, height: usize) -> (NocSystem, RuntimeConfigurator, usize) {
    let n = 2 * width * height;
    let mut nis = vec![presets::cfg_module_ni(0, 8), presets::master_ni(1)];
    for id in 2..n {
        nis.push(presets::slave_ni(id));
    }
    let spec = NocSpec::new(
        TopologySpec::Mesh {
            width,
            height,
            nis_per_router: 2,
        },
        nis,
    );
    let mut sys = NocSystem::from_spec(&spec);
    let mut cfg = RuntimeConfigurator::new(spec.topology.build(), 0, 0, 8);
    let slave = n - 1;
    cfg.open_connection(
        &mut sys,
        &ConnectionRequest::best_effort(
            ChannelEnd { ni: 1, channel: 1 },
            ChannelEnd {
                ni: slave,
                channel: 1,
            },
        ),
    )
    .expect("connection opens");
    (sys, cfg, slave)
}

/// Parameters for a raw streaming pair.
#[derive(Debug, Clone, Copy)]
pub struct StreamSetup {
    /// GT slots for the forward direction (`None` = best effort).
    pub gt_slots: Option<usize>,
    /// Slot placement.
    pub strategy: SlotStrategy,
    /// Data threshold at the source.
    pub data_threshold: u32,
    /// Credit threshold at the sink side.
    pub credit_threshold: u32,
    /// Source/destination queue depth of the streaming channels, words.
    pub queue_words: usize,
}

impl Default for StreamSetup {
    fn default() -> Self {
        StreamSetup {
            gt_slots: None,
            strategy: SlotStrategy::Spread,
            data_threshold: 0,
            credit_threshold: 0,
            queue_words: 8,
        }
    }
}

/// Builds a 2×1 mesh with a raw streaming pair: cfg (NI 0) and source
/// (NI 1) on router 0, sink (NI 2) and a spare (NI 3) on router 1, with the
/// connection source.ch1 → sink.ch1 opened per `setup`.
pub fn stream_system(setup: StreamSetup) -> (NocSystem, RuntimeConfigurator) {
    let mut spec = NocSpec::new(
        TopologySpec::Mesh {
            width: 2,
            height: 1,
            nis_per_router: 2,
        },
        vec![
            presets::cfg_module_ni(0, 4),
            presets::raw_ni(1, 1),
            presets::raw_ni(2, 1),
            presets::slave_ni(3),
        ],
    );
    // The streaming channels' queue depth is a design-time knob (§1).
    spec.nis[1].kernel.ports[1].queue_words = setup.queue_words;
    spec.nis[2].kernel.ports[1].queue_words = setup.queue_words;
    let mut sys = NocSystem::from_spec(&spec);
    let mut cfg = RuntimeConfigurator::new(spec.topology.build(), 0, 0, 8);
    let fwd = match setup.gt_slots {
        Some(slots) => Service::Guaranteed {
            slots,
            strategy: setup.strategy,
        },
        None => Service::BestEffort,
    };
    let req = ConnectionRequest {
        fwd,
        rev: Service::BestEffort,
        data_threshold: setup.data_threshold,
        credit_threshold: setup.credit_threshold,
        ..ConnectionRequest::best_effort(
            ChannelEnd { ni: 1, channel: 1 },
            ChannelEnd { ni: 2, channel: 1 },
        )
    };
    cfg.open_connection(&mut sys, &req)
        .expect("stream connection opens");
    // The configurator writes thresholds only at the master end (the
    // paper's 5-vs-3 register split); program the sink side's credit
    // threshold explicitly so unidirectional credit batching is testable.
    if setup.credit_threshold > 0 {
        use aethereal_ni::kernel::{chan_reg_addr, ChanReg};
        sys.nis[2]
            .kernel
            .reg_write(
                chan_reg_addr(1, ChanReg::CreditThreshold),
                setup.credit_threshold,
            )
            .expect("threshold register exists");
    }
    (sys, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_slave_builds_on_several_sizes() {
        for (w, h) in [(1, 2), (2, 2), (3, 2)] {
            let (sys, cfg, slave) = master_slave_system(w, h);
            assert_eq!(sys.nis.len(), 2 * w * h);
            assert_eq!(slave, 2 * w * h - 1);
            assert_eq!(cfg.stats().connections_opened, 1);
        }
    }

    #[test]
    fn stream_system_gt_and_be() {
        let (sys, cfg) = stream_system(StreamSetup::default());
        assert!(!sys.nis[1].kernel.channel(1).is_gt());
        assert_eq!(cfg.stats().connections_opened, 1);
        let (sys, _) = stream_system(StreamSetup {
            gt_slots: Some(4),
            ..Default::default()
        });
        assert!(sys.nis[1].kernel.channel(1).is_gt());
    }
}
