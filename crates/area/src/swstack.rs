//! The software-protocol-stack baseline.
//!
//! §5 of the paper: *"The latency overhead of a software implementation of
//! the protocol is much larger (e.g., 47 instructions for packetization
//! only [Bhojwani & Mahapatra, VLSI Design 2003])"*, against the hardware
//! NI's 4–10 pipelined cycles.
//!
//! We model the software path as an instruction-count budget executed on an
//! embedded RISC core: a fixed per-packet setup (header assembly, queue
//! management, descriptor bookkeeping) plus a per-word copy cost, with the
//! per-packet component calibrated so that the reference packet of the
//! cited work costs exactly 47 instructions.

/// Lower bound of the hardware NI latency overhead, cycles (§5).
pub const HW_NI_LATENCY_MIN: u64 = 4;
/// Upper bound of the hardware NI latency overhead, cycles (§5).
pub const HW_NI_LATENCY_MAX: u64 = 10;

/// Instruction budget model of software packetization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwStackModel {
    /// Instructions per packet independent of length (header assembly,
    /// routing lookup, queue pointers).
    pub per_packet_instructions: u64,
    /// Instructions per payload word (load/store/update/branch of the copy
    /// loop).
    pub per_word_instructions: u64,
    /// Average cycles per instruction of the embedded core.
    pub cpi: f64,
}

impl SwStackModel {
    /// The calibrated model: the cited 47 instructions correspond to
    /// packetizing one reference 4-word payload — 31 fixed + 4 × 4 copy
    /// instructions.
    pub fn calibrated() -> Self {
        SwStackModel {
            per_packet_instructions: 31,
            per_word_instructions: 4,
            cpi: 1.3,
        }
    }

    /// Instructions to packetize one packet of `payload_words`.
    pub fn instructions(&self, payload_words: u64) -> u64 {
        self.per_packet_instructions + self.per_word_instructions * payload_words
    }

    /// Cycles to packetize one packet of `payload_words`.
    pub fn cycles(&self, payload_words: u64) -> u64 {
        (self.instructions(payload_words) as f64 * self.cpi).round() as u64
    }

    /// Software-to-hardware latency ratio for a packet of `payload_words`
    /// against a hardware latency of `hw_cycles`.
    pub fn slowdown(&self, payload_words: u64, hw_cycles: u64) -> f64 {
        self.cycles(payload_words) as f64 / hw_cycles.max(1) as f64
    }
}

impl Default for SwStackModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_47_instructions() {
        let m = SwStackModel::calibrated();
        assert_eq!(m.instructions(4), 47);
    }

    #[test]
    fn instructions_grow_with_payload() {
        let m = SwStackModel::calibrated();
        assert!(m.instructions(8) > m.instructions(4));
        assert_eq!(m.instructions(0), 31);
    }

    #[test]
    fn cycles_apply_cpi() {
        let m = SwStackModel::calibrated();
        assert_eq!(m.cycles(4), (47.0_f64 * 1.3).round() as u64);
    }

    #[test]
    fn software_is_much_slower_than_hardware() {
        let m = SwStackModel::calibrated();
        // Even against the worst-case hardware latency the software stack
        // is several times slower — the paper's qualitative claim.
        assert!(m.slowdown(4, HW_NI_LATENCY_MAX) > 4.0);
        assert!(m.slowdown(4, HW_NI_LATENCY_MIN) > 10.0);
    }
}
