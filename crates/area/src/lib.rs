//! # aethereal-area — analytical area/frequency models calibrated to the
//! DATE 2004 synthesis results
//!
//! The paper's evaluation (§5) is a synthesis experiment: component areas in
//! a 0.13 µm CMOS technology at 500 MHz. Synthesis is not reproducible in a
//! pure-Rust environment, so — per the substitution policy in `DESIGN.md` —
//! this crate provides an **analytical area model anchored to the published
//! numbers**:
//!
//! | component            | paper (mm²) |
//! |----------------------|-------------|
//! | NI kernel (reference) | 0.110      |
//! | narrowcast shell      | 0.004      |
//! | multi-connection shell| 0.007      |
//! | DTL master shell      | 0.005      |
//! | DTL slave shell       | 0.002      |
//! | config shell          | 0.010      |
//! | example 4-port NI     | **0.143**  |
//!
//! The kernel model decomposes the anchor into FIFO bits, per-channel
//! control, STU slots and per-port logic with plausible 0.13 µm standard-
//! cell cost coefficients, with the remainder assigned to the shared
//! packetizer/depacketizer/scheduler. The decomposition keeps the anchor
//! point **exact** and extrapolates smoothly for parameter sweeps (more
//! channels, deeper queues, bigger slot tables).
//!
//! [`swstack`] models the software-protocol-stack baseline the paper
//! compares against (47 instructions for packetization alone, citing
//! Bhojwani & Mahapatra).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod swstack;

pub use model::{AreaBreakdown, AreaModel, NiInstance, ShellKind};
pub use swstack::{SwStackModel, HW_NI_LATENCY_MAX, HW_NI_LATENCY_MIN};
