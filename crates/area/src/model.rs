//! The calibrated area model.
//!
//! Calibration (all areas in µm², technology 0.13 µm):
//!
//! * The reference kernel instance (§5) has 8 channels × 2 queues × 8 words
//!   × 32 bits = 4096 FIFO bits, 8 channels of control, an 8-slot STU and
//!   4 ports, totalling 0.110 mm² = 110 000 µm².
//! * Custom hardware FIFOs in 0.13 µm standard cells cost ≈ 18.8 µm²/bit
//!   (flop + mux + control amortized) → 4096 bits ≈ 77 000 µm² (70 % of the
//!   kernel, consistent with the paper's emphasis that the queues dominate
//!   and motivated their custom FIFO design).
//! * Per-channel control (Space/Credit counters, threshold comparators,
//!   registers) ≈ 2 500 µm² → 20 000 µm².
//! * STU ≈ 500 µm²/slot → 4 000 µm²; per-port logic ≈ 1 000 µm² → 4 000 µm².
//! * The remainder — 5 000 µm² — is the shared packetizer, depacketizer and
//!   scheduler.
//!
//! `77 005 + 20 000 + 4 000 + 4 000 + 4 995 = 110 000` (the anchor is kept
//! exact by assigning the residual to the shared logic).

/// µm² per FIFO bit (custom hardware FIFO, 0.13 µm).
pub const FIFO_AREA_PER_BIT: f64 = 18.8;
/// µm² per channel of control state.
pub const CHANNEL_CTRL_AREA: f64 = 2_500.0;
/// µm² per STU slot.
pub const STU_AREA_PER_SLOT: f64 = 500.0;
/// µm² per port (clock boundary + port mux).
pub const PORT_AREA: f64 = 1_000.0;
/// µm² of shared packetizer/depacketizer/scheduler logic (calibration
/// residual keeping the reference kernel at exactly 0.110 mm²).
pub const SHARED_LOGIC_AREA: f64 = 110_000.0
    - (4096.0 * FIFO_AREA_PER_BIT
        + 8.0 * CHANNEL_CTRL_AREA
        + 8.0 * STU_AREA_PER_SLOT
        + 4.0 * PORT_AREA);

/// Word width of the Æthereal datapath.
pub const WORD_BITS: usize = 32;

/// Paper-anchored shell areas, µm².
pub const NARROWCAST_SHELL_AREA: f64 = 4_000.0;
/// Multi-connection shell (paper: 0.007 mm²).
pub const MULTI_CONN_SHELL_AREA: f64 = 7_000.0;
/// Simplified DTL master shell (paper: 0.005 mm²).
pub const DTL_MASTER_SHELL_AREA: f64 = 5_000.0;
/// Simplified DTL slave shell (paper: 0.002 mm²).
pub const DTL_SLAVE_SHELL_AREA: f64 = 2_000.0;
/// Configuration shell (paper: 0.01 mm²).
pub const CONFIG_SHELL_AREA: f64 = 10_000.0;

/// Router-side clock frequency of the prototype, MHz.
pub const ROUTER_CLOCK_MHZ: f64 = 500.0;

/// Link bandwidth toward the router at [`ROUTER_CLOCK_MHZ`], Gbit/s per
/// direction (32 bit × 500 MHz = 16 Gbit/s, §5).
pub const LINK_BANDWIDTH_GBIT: f64 = WORD_BITS as f64 * ROUTER_CLOCK_MHZ / 1_000.0;

/// A shell instance attached to an NI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShellKind {
    /// Narrowcast connection shell (Fig. 3).
    Narrowcast,
    /// Multi-connection shell (Fig. 4).
    MultiConnection,
    /// Simplified DTL master shell (Fig. 5).
    DtlMaster,
    /// Simplified DTL slave shell (Fig. 6).
    DtlSlave,
    /// Configuration shell (Fig. 8).
    Config,
}

impl ShellKind {
    /// Anchored area of the shell, µm².
    pub fn area_um2(self) -> f64 {
        match self {
            ShellKind::Narrowcast => NARROWCAST_SHELL_AREA,
            ShellKind::MultiConnection => MULTI_CONN_SHELL_AREA,
            ShellKind::DtlMaster => DTL_MASTER_SHELL_AREA,
            ShellKind::DtlSlave => DTL_SLAVE_SHELL_AREA,
            ShellKind::Config => CONFIG_SHELL_AREA,
        }
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            ShellKind::Narrowcast => "narrowcast shell",
            ShellKind::MultiConnection => "multi-connection shell",
            ShellKind::DtlMaster => "DTL master shell",
            ShellKind::DtlSlave => "DTL slave shell",
            ShellKind::Config => "config shell",
        }
    }
}

/// Parameters of an NI instance for area estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct NiInstance {
    /// Number of ports.
    pub ports: usize,
    /// Total channels across all ports.
    pub channels: usize,
    /// Queue depth per source/destination queue, words.
    pub queue_words: usize,
    /// STU slot-table size.
    pub stu_slots: usize,
    /// Attached shells.
    pub shells: Vec<ShellKind>,
}

impl NiInstance {
    /// The §5 reference instance: 4 ports with 1+1+2+4 channels, 8-word
    /// queues, 8 slots, one config shell, two DTL masters (one offering
    /// narrowcast), one DTL slave (multi-connection).
    pub fn reference() -> Self {
        NiInstance {
            ports: 4,
            channels: 8,
            queue_words: 8,
            stu_slots: 8,
            shells: vec![
                ShellKind::Config,
                ShellKind::DtlMaster,
                ShellKind::DtlMaster,
                ShellKind::Narrowcast,
                ShellKind::DtlSlave,
                ShellKind::MultiConnection,
            ],
        }
    }

    /// Total FIFO bits (two queues per channel).
    pub fn fifo_bits(&self) -> usize {
        self.channels * 2 * self.queue_words * WORD_BITS
    }
}

/// Itemized area estimate, µm².
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// FIFO storage.
    pub fifos: f64,
    /// Per-channel control.
    pub channel_ctrl: f64,
    /// Slot table unit.
    pub stu: f64,
    /// Per-port logic.
    pub ports: f64,
    /// Shared packetizer/depacketizer/scheduler.
    pub shared: f64,
    /// Shell areas, in instance order.
    pub shells: Vec<(ShellKind, f64)>,
}

impl AreaBreakdown {
    /// Kernel area (everything except shells), µm².
    pub fn kernel_um2(&self) -> f64 {
        self.fifos + self.channel_ctrl + self.stu + self.ports + self.shared
    }

    /// Total NI area, µm².
    pub fn total_um2(&self) -> f64 {
        self.kernel_um2() + self.shells.iter().map(|(_, a)| a).sum::<f64>()
    }

    /// Kernel area in mm².
    pub fn kernel_mm2(&self) -> f64 {
        self.kernel_um2() / 1e6
    }

    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }
}

/// The calibrated area/frequency model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaModel;

impl AreaModel {
    /// Creates the model (stateless; coefficients are compile-time
    /// calibration constants).
    pub fn new() -> Self {
        AreaModel
    }

    /// Estimates the itemized area of an NI instance.
    pub fn estimate(&self, ni: &NiInstance) -> AreaBreakdown {
        AreaBreakdown {
            fifos: ni.fifo_bits() as f64 * FIFO_AREA_PER_BIT,
            channel_ctrl: ni.channels as f64 * CHANNEL_CTRL_AREA,
            stu: ni.stu_slots as f64 * STU_AREA_PER_SLOT,
            ports: ni.ports as f64 * PORT_AREA,
            shared: SHARED_LOGIC_AREA,
            shells: ni.shells.iter().map(|&s| (s, s.area_um2())).collect(),
        }
    }

    /// Achievable router-side clock, MHz: the arbitration tree grows with
    /// the channel count; beyond the 8-channel reference each doubling costs
    /// ≈ 4 % of frequency (one extra mux level in the grant path).
    pub fn frequency_mhz(&self, ni: &NiInstance) -> f64 {
        let levels = (ni.channels.max(1) as f64).log2() - 3.0; // 8 channels = reference
        ROUTER_CLOCK_MHZ / (1.0 + 0.04 * levels.max(0.0))
    }

    /// Link bandwidth toward the router at the achievable clock, Gbit/s per
    /// direction.
    pub fn bandwidth_gbit(&self, ni: &NiInstance) -> f64 {
        WORD_BITS as f64 * self.frequency_mhz(ni) / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_kernel_matches_paper_exactly() {
        let model = AreaModel::new();
        let b = model.estimate(&NiInstance::reference());
        assert!(
            (b.kernel_mm2() - 0.110).abs() < 1e-9,
            "kernel anchor: got {}",
            b.kernel_mm2()
        );
    }

    #[test]
    fn reference_total_matches_paper_total() {
        // 0.11 + 0.01 + 2*0.005 + 0.004 + 0.002 + 0.007 = 0.143 mm².
        let model = AreaModel::new();
        let b = model.estimate(&NiInstance::reference());
        assert!(
            (b.total_mm2() - 0.143).abs() < 1e-9,
            "total anchor: got {}",
            b.total_mm2()
        );
    }

    #[test]
    fn shell_areas_match_paper() {
        assert_eq!(ShellKind::Narrowcast.area_um2(), 4_000.0);
        assert_eq!(ShellKind::MultiConnection.area_um2(), 7_000.0);
        assert_eq!(ShellKind::DtlMaster.area_um2(), 5_000.0);
        assert_eq!(ShellKind::DtlSlave.area_um2(), 2_000.0);
        assert_eq!(ShellKind::Config.area_um2(), 10_000.0);
    }

    #[test]
    fn shell_percentages_match_paper() {
        // Paper: narrowcast 4 %, multi-connection 6 % of the kernel area
        // (rounded); DTL master 5 %, slave 2 %.
        let kernel = 110_000.0;
        assert_eq!((NARROWCAST_SHELL_AREA / kernel * 100.0).round(), 4.0);
        assert_eq!((MULTI_CONN_SHELL_AREA / kernel * 100.0).round(), 6.0);
        assert_eq!((DTL_MASTER_SHELL_AREA / kernel * 100.0).round(), 5.0);
        assert_eq!((DTL_SLAVE_SHELL_AREA / kernel * 100.0).round(), 2.0);
    }

    #[test]
    fn bandwidth_is_16_gbit_at_reference() {
        let model = AreaModel::new();
        let ni = NiInstance::reference();
        assert!((model.frequency_mhz(&ni) - 500.0).abs() < 1e-9);
        assert!((model.bandwidth_gbit(&ni) - 16.0).abs() < 1e-9);
        assert!((LINK_BANDWIDTH_GBIT - 16.0).abs() < 1e-9);
    }

    #[test]
    fn area_scales_monotonically() {
        let model = AreaModel::new();
        let mut ni = NiInstance::reference();
        let base = model.estimate(&ni).total_um2();
        ni.queue_words = 16;
        let deeper = model.estimate(&ni).total_um2();
        assert!(deeper > base);
        ni.channels = 16;
        let wider = model.estimate(&ni).total_um2();
        assert!(wider > deeper);
    }

    #[test]
    fn frequency_degrades_with_channels() {
        let model = AreaModel::new();
        let mut ni = NiInstance::reference();
        ni.channels = 32;
        assert!(model.frequency_mhz(&ni) < 500.0);
        ni.channels = 2;
        assert!(
            (model.frequency_mhz(&ni) - 500.0).abs() < 1e-9,
            "small stays at 500"
        );
    }

    #[test]
    fn fifo_bits_computation() {
        assert_eq!(NiInstance::reference().fifo_bits(), 4096);
    }

    #[test]
    fn shared_logic_residual_positive() {
        // Read through a function call so the check exercises runtime
        // arithmetic rather than a constant the compiler folds away.
        let b = AreaModel::new().estimate(&NiInstance::reference());
        assert!(b.shared > 0.0, "calibration sanity: {}", b.shared);
    }
}
